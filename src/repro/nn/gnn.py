"""GNN convolution layers operating on sampled blocks.

Each layer consumes a :class:`~repro.sampling.blocks.Block` plus the
source-row embeddings and produces destination-row embeddings,
implementing the neighborhood aggregation of paper Eq. (1).  All layers
honor per-edge weights, which is how the Spielman-Srivastava weights of
sparsified subgraphs enter the computation.

Implemented architectures (paper Section V, Fig. 14): GCN, GraphSAGE,
GAT and GATv2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import ensure_rng
from ..sampling.blocks import Block
from .module import Linear, Module, Parameter, xavier_uniform
from .tensor import (
    Tensor,
    concat,
    gather,
    leaky_relu,
    segment_softmax,
    segment_sum,
)


class GCNConv(Module):
    """Graph convolution with implicit self-loops.

    Destination embeddings are the degree-normalized weighted sum of
    neighbor embeddings plus the node's own previous embedding, then an
    affine map:

        h_v = W * (h_v + sum_u w_uv h_u) / (1 + sum_u w_uv)

    This is DGL's ``GraphConv(norm="right")`` with self-loops added,
    the standard formulation for mini-batch (block-wise) GCN.
    """

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        """One message-passing step over ``block``."""
        messages = gather(h_src, block.edge_src) * Tensor(
            block.edge_weight[:, None])
        agg = segment_sum(messages, block.edge_dst, block.num_dst)
        h_self = _slice_rows(h_src, block.num_dst)
        total_weight = np.ones(block.num_dst)
        np.add.at(total_weight, block.edge_dst, block.edge_weight)
        normalized = (agg + h_self) * Tensor(1.0 / total_weight[:, None])
        return self.linear(normalized)


class SAGEConv(Module):
    """GraphSAGE with (weighted) mean aggregation.

        h_v = W_self h_v + W_neigh mean_u(w_uv h_u)
    """

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.fc_self = Linear(in_dim, out_dim, rng=rng)
        self.fc_neigh = Linear(in_dim, out_dim, bias=False, rng=rng)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        """One message-passing step over ``block``."""
        messages = gather(h_src, block.edge_src) * Tensor(
            block.edge_weight[:, None])
        summed = segment_sum(messages, block.edge_dst, block.num_dst)
        denom = np.zeros(block.num_dst)
        np.add.at(denom, block.edge_dst, block.edge_weight)
        denom = np.maximum(denom, 1e-12)
        h_neigh = summed * Tensor(1.0 / denom[:, None])
        h_self = _slice_rows(h_src, block.num_dst)
        return self.fc_self(h_self) + self.fc_neigh(h_neigh)


class GATConv(Module):
    """Graph attention (Velickovic et al.), multi-head with concat.

    Edge weights from sparsification are incorporated as additive
    log-weight priors on the attention logits, so a down-weighted edge
    contributes proportionally less attention mass.
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 1,
                 negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if out_dim % num_heads:
            raise ValueError("out_dim must be divisible by num_heads")
        rng = ensure_rng(rng)
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.negative_slope = negative_slope
        self.fc = [Linear(in_dim, self.head_dim, bias=False, rng=rng)
                   for _ in range(num_heads)]
        self.attn_l = [Parameter(xavier_uniform((self.head_dim, 1), rng))
                       for _ in range(num_heads)]
        self.attn_r = [Parameter(xavier_uniform((self.head_dim, 1), rng))
                       for _ in range(num_heads)]

    def _head(self, i: int, block: Block, h_src: Tensor) -> Tensor:
        z = self.fc[i](h_src)                      # (num_src, head_dim)
        score_src = z @ self.attn_l[i]             # (num_src, 1)
        score_dst = z @ self.attn_r[i]
        e = (gather(score_src, block.edge_src)
             + gather(score_dst, block.edge_dst))
        e = leaky_relu(e, self.negative_slope)
        e = e + Tensor(np.log(np.maximum(block.edge_weight, 1e-12))[:, None])
        alpha = segment_softmax(e, block.edge_dst, block.num_dst)
        messages = gather(z, block.edge_src) * alpha
        return segment_sum(messages, block.edge_dst, block.num_dst)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        """One message-passing step over ``block``."""
        heads = [self._head(i, block, h_src) for i in range(self.num_heads)]
        return heads[0] if len(heads) == 1 else concat(heads, axis=1)


class GATv2Conv(Module):
    """GATv2 (Brody et al.): attention applied after the nonlinearity,

        e_uv = a^T LeakyReLU(W_l h_u + W_r h_v),

    fixing GAT's static-attention limitation.
    """

    def __init__(self, in_dim: int, out_dim: int, num_heads: int = 1,
                 negative_slope: float = 0.2,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if out_dim % num_heads:
            raise ValueError("out_dim must be divisible by num_heads")
        rng = ensure_rng(rng)
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.negative_slope = negative_slope
        self.fc_l = [Linear(in_dim, self.head_dim, bias=False, rng=rng)
                     for _ in range(num_heads)]
        self.fc_r = [Linear(in_dim, self.head_dim, bias=False, rng=rng)
                     for _ in range(num_heads)]
        self.attn = [Parameter(xavier_uniform((self.head_dim, 1), rng))
                     for _ in range(num_heads)]

    def _head(self, i: int, block: Block, h_src: Tensor) -> Tensor:
        z_l = self.fc_l[i](h_src)
        z_r = self.fc_r[i](h_src)
        combined = (gather(z_l, block.edge_src)
                    + gather(z_r, block.edge_dst))
        e = leaky_relu(combined, self.negative_slope) @ self.attn[i]
        e = e + Tensor(np.log(np.maximum(block.edge_weight, 1e-12))[:, None])
        alpha = segment_softmax(e, block.edge_dst, block.num_dst)
        messages = gather(z_l, block.edge_src) * alpha
        return segment_sum(messages, block.edge_dst, block.num_dst)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        """One message-passing step over ``block``."""
        heads = [self._head(i, block, h_src) for i in range(self.num_heads)]
        return heads[0] if len(heads) == 1 else concat(heads, axis=1)


class GINConv(Module):
    """Graph Isomorphism Network layer (Xu et al., cited as [16]).

        h_v = MLP((1 + eps) h_v + sum_u w_uv h_u)

    ``eps`` is learned.  Included as an extension beyond the paper's
    four evaluated models; it slots into every framework unchanged.
    """

    def __init__(self, in_dim: int, out_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.eps = Parameter(np.zeros(1))
        self.fc1 = Linear(in_dim, out_dim, rng=rng)
        self.fc2 = Linear(out_dim, out_dim, rng=rng)

    def forward(self, block: Block, h_src: Tensor) -> Tensor:
        """One message-passing step over ``block``."""
        from .tensor import relu as _relu
        messages = gather(h_src, block.edge_src) * Tensor(
            block.edge_weight[:, None])
        agg = segment_sum(messages, block.edge_dst, block.num_dst)
        h_self = _slice_rows(h_src, block.num_dst)
        combined = h_self * (self.eps + 1.0) + agg
        return self.fc2(_relu(self.fc1(combined)))


def _slice_rows(x: Tensor, count: int) -> Tensor:
    """Differentiable ``x[:count]``."""
    data = x.data[:count]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        full = np.zeros_like(x.data)
        full[:count] = grad
        x._accumulate(full)

    return Tensor._result(data, (x,), backward)
