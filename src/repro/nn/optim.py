"""Optimizers (SGD and Adam).

The paper trains with Adam at learning rate 0.001; plain SGD is kept
because the distributed analysis (Algorithm 1 line 30) is written in
terms of an SGD step on averaged gradients.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        """Clear the gradient of every tracked parameter."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update step (subclass hook)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One SGD step (momentum/weight decay when configured)."""
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            # Sanctioned in-place update: runs between backward passes,
            # when no live graph captures p.data (the autograd
            # sanitizer thaws parameters at the end of backward).
            p.data -= self.lr * grad  # lint: disable=R003


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.001,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One Adam step with bias correction."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            # Sanctioned in-place update (see SGD.step above).
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)  # lint: disable=R003
