"""Optimizers (SGD and Adam).

The paper trains with Adam at learning rate 0.001; plain SGD is kept
because the distributed analysis (Algorithm 1 line 30) is written in
terms of an SGD step on averaged gradients.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Sequence[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer needs at least one parameter")

    def zero_grad(self) -> None:
        """Clear the gradient of every tracked parameter."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update step (subclass hook)."""
        raise NotImplementedError

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Optimizer state as ``{name: ndarray}`` (scalars as 0-d
        arrays) so it round-trips through :mod:`repro.nn.serialize`
        alongside the model's state dict — required by the
        fault-tolerance ``restore`` policy, which rehydrates a crashed
        worker's optimizer to the exact checkpoint step."""
        return {"lr": np.asarray(self.lr, dtype=np.float64)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore state captured by :meth:`state_dict`."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One SGD step (momentum/weight decay when configured)."""
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            # Sanctioned in-place update: runs between backward passes,
            # when no live graph captures p.data (the autograd
            # sanitizer thaws parameters at the end of backward).
            p.data -= self.lr * grad  # lint: disable=R003

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Learning rate plus per-parameter momentum buffers."""
        state = super().state_dict()
        for i, vel in enumerate(self._velocity):
            state[f"velocity.{i}"] = vel.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output into this optimizer."""
        super().load_state_dict(state)
        self._velocity = [state[f"velocity.{i}"].copy()
                          for i in range(len(self.params))]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: Sequence[Parameter], lr: float = 0.001,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """One Adam step with bias correction."""
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            # Sanctioned in-place update (see SGD.step above).
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)  # lint: disable=R003

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Learning rate, step count and first/second moment buffers.

        The step count matters: Adam's bias correction depends on ``t``,
        so a rehydrated worker that lost it would take differently
        scaled steps and break restore bit-identity.
        """
        state = super().state_dict()
        state["step_count"] = np.asarray(self._step_count, dtype=np.int64)
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore :meth:`state_dict` output into this optimizer."""
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._m = [state[f"m.{i}"].copy() for i in range(len(self.params))]
        self._v = [state[f"v.{i}"].copy() for i in range(len(self.params))]
