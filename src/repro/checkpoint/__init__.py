"""repro.checkpoint — durable, crash-safe session checkpoints.

Everything the fault layer tolerates today (crash / straggle / message
loss / store outage) assumes the coordinator process survives: worker
snapshots and replay logs live in memory or in child processes.  This
package makes a whole *session* durable:

* :mod:`repro.checkpoint.io` — the atomic persistence primitives
  (``tmp + fsync + rename``).  Every byte this package (and the serve
  artifact) puts on disk goes through them; lint rule R110 flags any
  persistence path that bypasses the module.
* :class:`CheckpointStore` — checksummed snapshot files plus a
  manifest/WAL recording the last durably completed ``(epoch, round)``.
  Torn or corrupted snapshots are detected on read and rolled back to
  the previous good entry.
* :mod:`repro.checkpoint.state` — capture/restore of the full trainer
  state: per-worker model + optimizer + RNG stream, the evaluator RNG,
  CommMeter ledgers, ParameterServer version/staleness, fault-controller
  counters, obs metric counters and the loop position.  Restoring and
  continuing a killed run reproduces the uninterrupted run's
  :meth:`~repro.distributed.trainer.TrainResult.digest` bit for bit.

Entry points: ``TrainConfig.checkpoint_dir`` /
``Session.checkpoint(dir, every=)`` enable periodic writes;
``Session.resume(dir)`` / ``repro.run(..., resume=dir)`` continue a
run; ``Session.restore(dir)`` rebuilds the trainer without training
(e.g. to export a servable).  See ``docs/checkpointing.md``.
"""

from .errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointNotFoundError,
)
from .state import (
    capture_trainer_state,
    load_checkpoint,
    rebuild_trainer,
    restore_trainer,
    split_fingerprint,
)
from .store import CheckpointInfo, CheckpointStore

__all__ = [
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointMismatchError",
    "CheckpointNotFoundError",
    "CheckpointStore",
    "capture_trainer_state",
    "load_checkpoint",
    "rebuild_trainer",
    "restore_trainer",
    "split_fingerprint",
]
