"""Capture and restore of full trainer state for exact resume.

A session checkpoint is one array state dict (npz codec) written
through the :class:`~repro.checkpoint.store.CheckpointStore`.  It
contains everything a fresh process needs to continue the epoch loop
bit-identically:

* ``meta_json`` — position (epoch, round), the full ``TrainConfig``
  (JSON form), framework name, worker count, workload fingerprint,
  epoch history, best-validation bookkeeping, fault-controller
  counters and RNG states (evaluator + legacy failure stream),
  ParameterServer version/staleness totals, and the obs metric
  counters + simulated-clock position of observing runs;
* ``worker.NNNN.payload`` — each worker's serialized
  :class:`~repro.faults.snapshot.WorkerSnapshot` (model, optimizer
  moments, RNG bit-generator state);
* ``meter.NNNN.*`` — the per-worker CommMeter ledgers;
* ``best.*`` / ``server.*`` — the best-validation weights and the
  ParameterServer model/optimizer arrays, when present.

Checkpoints are written at epoch boundaries (every
``TrainConfig.checkpoint_every`` epochs): loaders reshuffle at
``begin_epoch`` from the worker RNG stream, so an epoch boundary plus
the RNG states pins the entire remaining trajectory.  The
:class:`~repro.faults.plan.FaultPlan` and
:class:`~repro.distributed.sync.SyncPlan` need no explicit cursor —
both are keyed by absolute ``(epoch, round)``, so resuming at epoch
``N`` consumes exactly the events at epochs ``>= N``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Optional

import numpy as np

from .errors import CheckpointCorruptError, CheckpointMismatchError
from .store import CheckpointStore

#: Session-state schema identifier; bump on any layout change.
STATE_SCHEMA = "repro_session_state/v1"
_META_KEY = "meta_json"


# ----------------------------------------------------------------------
# identity
# ----------------------------------------------------------------------


def split_fingerprint(split) -> str:
    """Content hash of an :class:`~repro.graph.splits.EdgeSplit`.

    Covers the training graph (topology + features) and every labeled
    evaluation pair, so a checkpoint can refuse to resume onto a
    different workload (:class:`CheckpointMismatchError`) instead of
    silently diverging.
    """
    graph = split.train_graph
    digest = hashlib.sha256()

    def _feed(name: str, arr: Optional[np.ndarray]) -> None:
        digest.update(name.encode("ascii"))
        if arr is None:
            digest.update(b"none")
            return
        arr = np.ascontiguousarray(arr)
        digest.update(str(arr.shape).encode("ascii"))
        digest.update(str(arr.dtype).encode("ascii"))
        digest.update(arr.tobytes())

    _feed("indptr", graph.indptr)
    _feed("indices", graph.indices)
    _feed("features", graph.features)
    _feed("train_pos", split.train_pos)
    _feed("val_pos", split.val_pos)
    _feed("val_neg", split.val_neg)
    _feed("test_pos", split.test_pos)
    _feed("test_neg", split.test_neg)
    return digest.hexdigest()


def config_to_dict(config) -> Dict[str, object]:
    """JSON form of a :class:`~repro.distributed.trainer.TrainConfig`.

    Plan/spec objects serialize through their ``to_dict``;
    ``TrainConfig.__post_init__`` canonicalizes them back on rebuild,
    so ``TrainConfig(**config_to_dict(c))`` round-trips exactly.
    """
    out: Dict[str, object] = {}
    for f in dataclass_fields(config):
        value = getattr(config, f.name)
        if hasattr(value, "to_dict"):
            value = value.to_dict()
        elif isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


# ----------------------------------------------------------------------
# capture
# ----------------------------------------------------------------------


def _rng_state(rng: np.random.Generator) -> Dict[str, object]:
    """A generator's bit-generator state (JSON-safe dict)."""
    return rng.bit_generator.state


def _set_rng_state(rng: np.random.Generator, state) -> None:
    """Restore a generator from :func:`_rng_state` output."""
    rng.bit_generator.state = state


def _stats_to_dict(stats) -> Dict[str, object]:
    """JSON form of one :class:`~repro.distributed.trainer.EpochStats`."""
    val = None
    if stats.val is not None:
        val = {"hits": float(stats.val.hits), "auc": float(stats.val.auc),
               "k": int(stats.val.k)}
    return {"epoch": stats.epoch, "mean_loss": stats.mean_loss,
            "comm": stats.comm.to_dict(), "rounds": stats.rounds,
            "mfg_edges": stats.mfg_edges, "val": val}


def _stats_from_dict(d: Dict[str, object]):
    """Rebuild one ``EpochStats`` from :func:`_stats_to_dict` output."""
    from ..distributed.trainer import EpochStats
    from ..distributed.comm import CommRecord
    from ..eval.evaluator import EvalResult

    val = None
    if d["val"] is not None:
        val = EvalResult(hits=float(d["val"]["hits"]),
                         auc=float(d["val"]["auc"]), k=int(d["val"]["k"]))
    return EpochStats(epoch=int(d["epoch"]),
                      mean_loss=float(d["mean_loss"]),
                      comm=CommRecord(**d["comm"]), val=val,
                      rounds=int(d["rounds"]),
                      mfg_edges=int(d["mfg_edges"]))


def _capture_faults(faults) -> Optional[Dict[str, object]]:
    """Serializable fault-controller state (counters + RNG stream).

    ``None`` in (no controller attached yet — e.g. a snapshot taken
    outside ``train()``) means ``None`` out: nothing to restore.
    """
    if faults is None:
        return None
    return {
        "live": list(faults.live),
        "counts": dict(faults.counts),
        "dropped": faults.dropped_contributions,
        "retry_attempts": list(faults._retry_attempts),
        "model_sync_excluded": sorted(faults._model_sync_excluded),
        "outage_rounds_left": faults._outage_rounds_left,
        "failure_rng": _rng_state(faults._failure_rng),
    }


def capture_trainer_state(
    trainer,
    *,
    epoch: int,
    rnd: int,
    history=(),
    best_val: float = -1.0,
    best_state: Optional[Dict[str, np.ndarray]] = None,
    best_epoch: int = -1,
    evals_since_best: int = 0,
    faults=None,
) -> Dict[str, np.ndarray]:
    """Snapshot a (bound, mid-``train()``) trainer into an array dict.

    ``epoch``/``rnd`` record the last completed position; the loop
    state arguments mirror ``_train_loop``'s locals.  ``faults``
    defaults to the trainer's live
    :class:`~repro.faults.FaultController`.
    """
    config = trainer.config
    if faults is None:
        faults = trainer.fault_controller
    state: Dict[str, np.ndarray] = {}

    payloads = trainer.backend.snapshot_workers(epoch, rnd)
    for i, payload in enumerate(payloads):
        raw = b"" if payload is None else payload
        state[f"worker.{i:04d}.payload"] = np.frombuffer(raw,
                                                         dtype=np.uint8)
    for i, meter in enumerate(trainer.meters):
        epochs = [[r.feature_bytes, r.structure_bytes, r.sync_bytes]
                  for r in meter.epochs]
        state[f"meter.{i:04d}.epochs"] = np.array(
            epochs, dtype=np.int64).reshape(len(epochs), 3)
        state[f"meter.{i:04d}.current"] = np.array(
            [meter.current.feature_bytes, meter.current.structure_bytes,
             meter.current.sync_bytes], dtype=np.int64)
    if best_state is not None:
        for name, value in best_state.items():
            state[f"best.{name}"] = value

    server_meta = None
    server = trainer.parameter_server
    if server is not None:
        for name, value in server.model.state_dict().items():
            state[f"server.model.{name}"] = value
        for name, value in server.optimizer.state_dict().items():
            state[f"server.optim.{name}"] = value
        server_meta = {
            "version": server.version,
            "worker_version": list(server.worker_version),
            "pushes": server.pushes,
            "pulls": server.pulls,
            "staleness_sum": server.staleness_sum,
            "staleness_max": server.staleness_max,
        }

    obs_meta = None
    if trainer.observer is not None:
        obs_meta = {"metrics": trainer.observer.metrics.to_dict(),
                    "now_s": trainer.observer.tracer.now_s}

    meta = {
        "schema": STATE_SCHEMA,
        "epoch": int(epoch),
        "round": int(rnd),
        "framework": trainer.framework,
        "num_workers": len(trainer.workers),
        "positive_mode": trainer.positive_mode,
        "seed": config.seed,
        "config": config_to_dict(config),
        "build_knobs": dict(trainer.build_knobs),
        "split_fingerprint": split_fingerprint(trainer.split),
        "history": [_stats_to_dict(s) for s in history],
        "best": {"val": best_val, "epoch": best_epoch,
                 "evals_since_best": evals_since_best,
                 "has_state": best_state is not None},
        "evaluator_rng": _rng_state(trainer.evaluator.rng),
        "faults": _capture_faults(faults),
        "server": server_meta,
        "replica_sync_total": trainer._replica_sync_total,
        "obs": obs_meta,
    }
    state[_META_KEY] = np.array(json.dumps(meta))
    return state


# ----------------------------------------------------------------------
# restore
# ----------------------------------------------------------------------


@dataclass
class ResumeState:
    """Loop state ``_train_loop`` re-enters after a restore."""

    epoch: int
    round: int
    history: List[object]
    best_val: float
    best_state: Optional[Dict[str, np.ndarray]]
    best_epoch: int
    evals_since_best: int
    faults: Optional[Dict[str, object]]

    def apply_faults(self, controller) -> None:
        """Restore a fresh :class:`FaultController`'s mutable state."""
        fstate = self.faults
        if fstate is None:
            return
        controller.live = [bool(x) for x in fstate["live"]]
        controller.counts = dict(fstate["counts"])
        controller.dropped_contributions = int(fstate["dropped"])
        controller._retry_attempts = [int(x)
                                      for x in fstate["retry_attempts"]]
        controller._model_sync_excluded = set(
            fstate["model_sync_excluded"])
        controller._outage_rounds_left = int(fstate["outage_rounds_left"])
        _set_rng_state(controller._failure_rng, fstate["failure_rng"])


def _restore_metrics(observer, snapshot: Dict[str, Dict[str, object]]
                     ) -> None:
    """Recreate a metrics registry from its ``to_dict`` snapshot."""
    for name, entry in snapshot.items():
        kind = entry["kind"]
        if kind == "counter":
            observer.counter(name).value = entry["value"]
        elif kind == "gauge":
            observer.gauge(name).set(entry["value"])
        elif kind == "histogram":
            hist = observer.histogram(name, entry["buckets"])
            hist.counts = [int(c) for c in entry["counts"]]
            hist.total = float(entry["sum"])
            hist.count = int(entry["count"])


def parse_meta(state: Dict[str, np.ndarray]) -> Dict[str, object]:
    """Extract and validate the ``meta_json`` record of a snapshot."""
    if _META_KEY not in state:
        raise CheckpointCorruptError(
            "snapshot has no meta record: not a session checkpoint")
    meta = json.loads(str(state[_META_KEY]))
    if meta.get("schema") != STATE_SCHEMA:
        raise CheckpointCorruptError(
            f"unsupported session-state schema {meta.get('schema')!r} "
            f"(expected {STATE_SCHEMA!r})")
    return meta


def restore_trainer(trainer, state: Dict[str, np.ndarray]) -> ResumeState:
    """Load a snapshot into a freshly built (unbound) trainer.

    Applies worker model/optimizer/RNG payloads, the evaluator RNG,
    CommMeter ledgers, ParameterServer state, fault counters' RNG and
    obs metrics; stashes the loop state on ``trainer._resume`` for
    ``_train_loop`` to re-enter at ``epoch + 1``.  Returns the
    :class:`ResumeState`.
    """
    from ..distributed.comm import CommRecord
    from ..faults.snapshot import WorkerSnapshot, restore_worker

    meta = parse_meta(state)
    if meta["num_workers"] != len(trainer.workers):
        raise CheckpointMismatchError(
            f"checkpoint has {meta['num_workers']} workers, the trainer "
            f"{len(trainer.workers)}")
    epoch, rnd = int(meta["epoch"]), int(meta["round"])

    nbytes_read = 0
    for i, worker in enumerate(trainer.workers):
        payload = state[f"worker.{i:04d}.payload"]
        if payload.size == 0:
            continue  # worker was dead (elastic removal) at capture
        nbytes_read += int(payload.size)
        restore_worker(worker, WorkerSnapshot(
            payload=payload.tobytes(), epoch=epoch, round=rnd))
    for i, meter in enumerate(trainer.meters):
        rows = state[f"meter.{i:04d}.epochs"]
        meter.epochs = [CommRecord(feature_bytes=int(r[0]),
                                   structure_bytes=int(r[1]),
                                   sync_bytes=int(r[2])) for r in rows]
        cur = state[f"meter.{i:04d}.current"]
        meter.current = CommRecord(feature_bytes=int(cur[0]),
                                   structure_bytes=int(cur[1]),
                                   sync_bytes=int(cur[2]))
    _set_rng_state(trainer.evaluator.rng, meta["evaluator_rng"])

    server = trainer.parameter_server
    if server is not None and meta["server"] is not None:
        smeta = meta["server"]
        server.model.load_state_dict({
            k[len("server.model."):]: v for k, v in state.items()
            if k.startswith("server.model.")})
        server.optimizer.load_state_dict({
            k[len("server.optim."):]: v for k, v in state.items()
            if k.startswith("server.optim.")})
        server.version = int(smeta["version"])
        server.worker_version = [int(v) for v in smeta["worker_version"]]
        server.pushes = int(smeta["pushes"])
        server.pulls = int(smeta["pulls"])
        server.staleness_sum = int(smeta["staleness_sum"])
        server.staleness_max = int(smeta["staleness_max"])

    trainer._replica_sync_total = int(meta["replica_sync_total"])

    obs = trainer.observer
    if obs is not None and meta["obs"] is not None:
        _restore_metrics(obs, meta["obs"]["metrics"])
        behind = float(meta["obs"]["now_s"]) - obs.tracer.now_s
        if behind > 0:
            obs.tracer.advance(behind)
        obs.counter("checkpoint.restores").inc(1)
        obs.counter("checkpoint.bytes_read").inc(nbytes_read)

    best_state = None
    if meta["best"]["has_state"]:
        best_state = {k[len("best."):]: v for k, v in state.items()
                      if k.startswith("best.")}
    resume = ResumeState(
        epoch=epoch, round=rnd,
        history=[_stats_from_dict(d) for d in meta["history"]],
        best_val=float(meta["best"]["val"]),
        best_state=best_state,
        best_epoch=int(meta["best"]["epoch"]),
        evals_since_best=int(meta["best"]["evals_since_best"]),
        faults=meta["faults"])
    trainer._resume = resume
    return resume


# ----------------------------------------------------------------------
# load / rebuild
# ----------------------------------------------------------------------


def load_checkpoint(path) -> tuple:
    """Read the newest good snapshot under ``path``.

    Returns ``(meta, state)``; ``meta`` additionally carries ``dir``
    (the store location) and ``rolled_back`` (how many torn newer
    entries were skipped).  Raises the typed
    :mod:`~repro.checkpoint.errors` on every failure mode.
    """
    store = CheckpointStore(path)
    info, state, rolled_back = store.latest()
    meta = parse_meta(state)
    if meta["epoch"] != info.epoch or meta["round"] != info.round:
        raise CheckpointCorruptError(
            f"manifest records ({info.epoch}, {info.round}) but the "
            f"snapshot is for ({meta['epoch']}, {meta['round']})")
    meta["dir"] = os.fspath(path)
    meta["rolled_back"] = rolled_back
    return meta, state


def rebuild_trainer(meta, state, split, *,
                    framework: Optional[str] = None,
                    workers: Optional[int] = None):
    """Reconstruct a trainer from :func:`load_checkpoint` output.

    Rebuilds the exact same cluster (config, partitioning, samplers —
    all seeded from the stored config) against ``split``, then restores
    the snapshot into it.  ``framework``/``workers``, when given, must
    match the checkpoint (:class:`CheckpointMismatchError` otherwise) —
    as must ``split``'s fingerprint.  The returned trainer's
    ``train()`` continues the run.
    """
    from ..core.frameworks import FRAMEWORKS, build_trainer

    if framework is not None and framework != meta["framework"]:
        raise CheckpointMismatchError(
            f"checkpoint was written by framework "
            f"{meta['framework']!r}, not {framework!r}; resume with the "
            "stored framework")
    if workers is not None and workers != meta["num_workers"]:
        raise CheckpointMismatchError(
            f"checkpoint was written with {meta['num_workers']} "
            f"workers, not {workers}; resume with the stored size")
    fingerprint = split_fingerprint(split)
    if fingerprint != meta["split_fingerprint"]:
        raise CheckpointMismatchError(
            "checkpoint was written for a different workload (split "
            "fingerprint mismatch); resume needs the exact dataset and "
            "split the original run trained on")

    from ..distributed.trainer import TrainConfig

    cfg = dict(meta["config"])
    cfg["checkpoint_dir"] = meta.get("dir", cfg.get("checkpoint_dir"))
    config = TrainConfig(**cfg)
    knobs = meta.get("build_knobs", {})
    trainer = build_trainer(
        FRAMEWORKS[meta["framework"]], split, meta["num_workers"],
        config, alpha=float(knobs.get("alpha", 0.15)),
        rng=np.random.default_rng(config.seed),
        sparsifier_kind=str(knobs.get("sparsifier_kind", "approx_er")))
    restore_trainer(trainer, state)
    return trainer
