"""Typed checkpoint errors.

Every failure mode of the durable-checkpoint subsystem surfaces as one
of these (all subclasses of :class:`CheckpointError`, itself a
``RuntimeError``), so callers can distinguish "nothing there" from
"there, but damaged" from "there, but for a different run" without
catching bare ``OSError`` / ``FileNotFoundError`` leaks.
"""

from __future__ import annotations


class CheckpointError(RuntimeError):
    """Base class for every durable-checkpoint failure."""


class CheckpointNotFoundError(CheckpointError):
    """No usable checkpoint at the given location.

    Raised when the directory does not exist, is not a repro
    checkpoint directory (no manifest), or its manifest records no
    completed snapshot yet.
    """


class CheckpointCorruptError(CheckpointError):
    """A checkpoint exists but cannot be trusted.

    Raised when the manifest is unreadable, or when *every* snapshot it
    records fails its checksum (a single torn newest snapshot rolls
    back to the previous entry instead of raising).
    """


class CheckpointMismatchError(CheckpointError):
    """The checkpoint is valid but belongs to a different run.

    Raised when the workload fingerprint, framework or cluster size of
    the checkpoint disagrees with what the caller is resuming into.
    """
