"""The durable checkpoint store: checksummed snapshots + manifest WAL.

On disk a checkpoint directory looks like::

    <dir>/manifest.json             the write-ahead manifest
    <dir>/snap-000003-000005.ckpt   one snapshot per completed write

A *write* is two atomic steps, in order: the snapshot file is written
durably (``tmp + fsync + rename`` via :mod:`repro.checkpoint.io`),
then the manifest is atomically rewritten with the new entry appended.
The manifest therefore only ever references snapshots that are fully
on disk — it records the last durably completed ``(epoch, round)``.

A *read* walks the manifest newest-first, verifying each snapshot's
size and sha256 against the recorded entry.  A torn or corrupted
newest snapshot (e.g. the driver died mid-write, or the file was
truncated afterwards) is skipped — the read rolls back to the previous
good entry.  Only when every entry fails does the store raise
:class:`~repro.checkpoint.errors.CheckpointCorruptError`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .errors import CheckpointCorruptError, CheckpointNotFoundError
from .io import (
    atomic_write_bytes,
    atomic_write_json,
    serialize_state,
    deserialize_state,
    sha256_bytes,
)

#: Manifest schema identifier; bump on any layout change.
MANIFEST_SCHEMA = "repro_checkpoint_manifest/v1"
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class CheckpointInfo:
    """One manifest entry: a durably completed snapshot."""

    epoch: int
    round: int
    file: str
    sha256: str
    nbytes: int

    def to_dict(self) -> Dict[str, object]:
        """JSON form, as stored in the manifest."""
        return {"epoch": self.epoch, "round": self.round,
                "file": self.file, "sha256": self.sha256,
                "nbytes": self.nbytes}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CheckpointInfo":
        """Rebuild from :meth:`to_dict` output."""
        return cls(epoch=int(d["epoch"]), round=int(d["round"]),
                   file=str(d["file"]), sha256=str(d["sha256"]),
                   nbytes=int(d["nbytes"]))


class CheckpointStore:
    """Atomic, checksummed snapshot storage under one directory.

    ``keep`` bounds the number of snapshots retained: after each write
    the oldest entries beyond the newest ``keep`` are dropped from the
    manifest and their files deleted.  At least two are always kept so
    a torn newest write can roll back.
    """

    def __init__(self, root: "os.PathLike[str] | str",
                 keep: int = 2) -> None:
        if keep < 2:
            raise ValueError("keep must be >= 2 (rollback needs a "
                             "previous snapshot)")
        self.root = os.fspath(root)
        self.keep = keep

    # -- paths ----------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        """Location of the manifest WAL."""
        return os.path.join(self.root, MANIFEST_NAME)

    def _snapshot_name(self, epoch: int, rnd: int) -> str:
        """Deterministic snapshot filename for an ``(epoch, round)``."""
        return f"snap-{epoch:06d}-{rnd:06d}.ckpt"

    # -- manifest -------------------------------------------------------

    def _read_manifest(self) -> List[CheckpointInfo]:
        """Parse the manifest; typed errors for every failure mode."""
        if not os.path.isdir(self.root):
            raise CheckpointNotFoundError(
                f"checkpoint directory {self.root!r} does not exist; "
                "pass the directory a previous run checkpointed into "
                "(Session.checkpoint / TrainConfig.checkpoint_dir)")
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            raise CheckpointNotFoundError(
                f"{self.root!r} is not a repro checkpoint directory "
                f"(no {MANIFEST_NAME}); pass the directory a previous "
                "run checkpointed into") from None
        except OSError as exc:
            raise CheckpointCorruptError(
                f"cannot read {self.manifest_path!r}: {exc}") from exc
        try:
            doc = json.loads(raw)
        except ValueError as exc:
            raise CheckpointCorruptError(
                f"{self.manifest_path!r} is not valid JSON "
                f"({exc}); the manifest was corrupted") from exc
        if (not isinstance(doc, dict)
                or doc.get("schema") != MANIFEST_SCHEMA):
            raise CheckpointCorruptError(
                f"{self.manifest_path!r} has schema "
                f"{doc.get('schema') if isinstance(doc, dict) else None!r}"
                f", expected {MANIFEST_SCHEMA!r}")
        return [CheckpointInfo.from_dict(e) for e in doc["entries"]]

    def _write_manifest(self, entries: List[CheckpointInfo]) -> None:
        """Atomically rewrite the manifest with ``entries``."""
        atomic_write_json(self.manifest_path, {
            "schema": MANIFEST_SCHEMA,
            "entries": [e.to_dict() for e in entries],
        })

    def entries(self) -> List[CheckpointInfo]:
        """All completed snapshots, oldest first."""
        return self._read_manifest()

    # -- write ----------------------------------------------------------

    def write(self, state: Dict[str, np.ndarray], epoch: int,
              rnd: int) -> CheckpointInfo:
        """Durably persist one snapshot and commit it to the manifest.

        The snapshot file lands (atomic + fsync) *before* the manifest
        references it; a crash between the two strands an unreferenced
        file, never a dangling manifest entry.  Returns the committed
        :class:`CheckpointInfo`.
        """
        os.makedirs(self.root, exist_ok=True)
        data = serialize_state(state)
        name = self._snapshot_name(epoch, rnd)
        atomic_write_bytes(os.path.join(self.root, name), data)
        info = CheckpointInfo(epoch=epoch, round=rnd, file=name,
                              sha256=sha256_bytes(data),
                              nbytes=len(data))
        try:
            entries = self._read_manifest()
        except CheckpointNotFoundError:
            entries = []
        entries = [e for e in entries if e.file != name]
        entries.append(info)
        dropped = entries[:-self.keep]
        entries = entries[-self.keep:]
        self._write_manifest(entries)
        for old in dropped:
            try:
                os.remove(os.path.join(self.root, old.file))
            except OSError:
                pass
        return info

    # -- read -----------------------------------------------------------

    def latest(self) -> Tuple[CheckpointInfo, Dict[str, np.ndarray], int]:
        """The newest *verifiable* snapshot.

        Walks the manifest newest-first, checking each snapshot's size
        and sha256; torn/corrupt entries are skipped (rollback).
        Returns ``(info, state, rolled_back)`` where ``rolled_back``
        counts the skipped newer entries.  Raises
        :class:`CheckpointNotFoundError` when the manifest records
        nothing, :class:`CheckpointCorruptError` when every recorded
        snapshot fails verification.
        """
        entries = self._read_manifest()
        if not entries:
            raise CheckpointNotFoundError(
                f"{self.root!r} has an empty manifest: no checkpoint "
                "completed before the run ended")
        rolled_back = 0
        for info in reversed(entries):
            path = os.path.join(self.root, info.file)
            try:
                with open(path, "rb") as fh:
                    data = fh.read()
            except OSError:
                rolled_back += 1
                continue
            if len(data) != info.nbytes or sha256_bytes(data) != info.sha256:
                rolled_back += 1
                continue
            try:
                state = deserialize_state(data)
            except (ValueError, OSError):
                rolled_back += 1
                continue
            return info, state, rolled_back
        raise CheckpointCorruptError(
            f"every snapshot recorded in {self.manifest_path!r} failed "
            "its checksum; the checkpoint directory is unrecoverable")
