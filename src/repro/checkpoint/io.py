"""Atomic persistence primitives: ``tmp + fsync + rename``.

This module is the *only* sanctioned way for checkpoint and serving
code to put bytes on disk (lint rule R110 flags persistence paths that
bypass it; this file is the rule's exemption).  The write protocol is
the classic crash-safe sequence:

1. write the payload to a temporary file in the destination directory,
2. flush and ``fsync`` the file so the bytes are durable,
3. ``os.replace`` it over the destination (atomic on POSIX),
4. ``fsync`` the directory so the rename itself is durable.

A reader therefore never observes a half-written file at the final
path: either the old content, or the complete new content.  Torn
writes can only strand a ``*.tmp`` file, which no reader ever opens.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from typing import Dict, Union, BinaryIO

import numpy as np

from ..nn.serialize import load_state_dict, save_state_dict

PathLike = Union[str, "os.PathLike[str]"]


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 of a byte string."""
    return hashlib.sha256(data).hexdigest()


def fsync_dir(path: PathLike) -> None:
    """``fsync`` a directory so a completed rename inside it is durable.

    Best-effort on platforms/filesystems that refuse to open a
    directory for reading — durability of the *payload* never depends
    on this call, only durability of the rename across power loss.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> int:
    """Atomically and durably write ``data`` to ``path``.

    Returns the number of bytes written.  The temporary file lives in
    the destination directory (same filesystem, so the rename is
    atomic) under a ``.tmp`` suffix.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(path) or ".")
    return len(data)


def atomic_write_text(path: PathLike, text: str) -> int:
    """Atomically write a UTF-8 text file (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: PathLike, obj: object) -> int:
    """Atomically write ``obj`` as indented JSON."""
    return atomic_write_text(path, json.dumps(obj, indent=2) + "\n")


def serialize_state(state: Dict[str, np.ndarray]) -> bytes:
    """Encode an array state dict with the repro npz codec, in memory.

    The returned bytes are exactly what :func:`atomic_save_state_dict`
    puts on disk, so callers can checksum the payload before (and
    independently of) writing it.
    """
    buffer = io.BytesIO()
    save_state_dict(state, buffer)
    return buffer.getvalue()


def deserialize_state(data: bytes) -> Dict[str, np.ndarray]:
    """Decode :func:`serialize_state` output back into an array dict."""
    return load_state_dict(io.BytesIO(data))


def atomic_save_state_dict(state: Dict[str, np.ndarray],
                           path: Union[PathLike, BinaryIO]) -> int:
    """Atomically persist an array state dict (npz codec).

    ``path`` may also be a writable binary file object, in which case
    the payload is streamed to it directly (the caller owns atomicity
    of whatever that object backs — e.g. an in-memory buffer).
    """
    data = serialize_state(state)
    if hasattr(path, "write"):
        path.write(data)
        return len(data)
    return atomic_write_bytes(path, data)
