"""repro — reproduction of "Demystifying Distributed Training of Graph
Neural Networks for Link Prediction" (ICDCS 2025).

The package implements SpLPG and every system it depends on from
scratch on numpy: graph storage, METIS-style partitioning,
effective-resistance sparsification, a GNN autograd stack
(GCN/GraphSAGE/GAT/GATv2), mini-batch samplers, and a simulated
distributed runtime with byte-exact communication accounting and
pluggable execution backends (serial / thread / process).

Quickstart
----------
>>> import repro
>>> result = repro.run(framework="splpg", dataset="cora",
...                    workers=4, backend="process",
...                    scale="smoke")                  # doctest: +SKIP
>>> print(result.summary())                           # doctest: +SKIP

See :mod:`repro.api` for the full front door (including the chainable
:class:`~repro.api.Session`); the older ``build_trainer`` /
``run_framework`` entry points still work but emit
``DeprecationWarning`` — import them from :mod:`repro.core` instead.
"""

import warnings as _warnings

from . import api
from .api import Session, SessionStateError, resolve_config, run
from .core import (
    FRAMEWORK_NAMES,
    FRAMEWORKS,
    PAPER_LABELS,
    FrameworkSpec,
    SpLPG,
)
from .distributed import TrainConfig, TrainResult, train_centralized
from .eval import EvalResult, Evaluator, auc, hits_at_k
from .graph import (
    DATASET_NAMES,
    Graph,
    dataset_spec,
    load_dataset,
    split_edges,
)
from .partition import PartitionSpec, partition_graph
from .sparsify import sparsify_with_level, spielman_srivastava_sparsify

__version__ = "1.1.0"

#: Legacy top-level entry points, served through ``__getattr__`` so the
#: import itself carries the deprecation signal.  The implementations
#: in :mod:`repro.core.frameworks` are unchanged — internal code
#: imports them from there and stays warning-free.
_DEPRECATED_ENTRY_POINTS = {
    "build_trainer": "repro.core.build_trainer (or repro.api.Session)",
    "run_framework": "repro.core.run_framework (or repro.run)",
}


def __getattr__(name):
    """Serve deprecated top-level entry points with a warning."""
    if name in _DEPRECATED_ENTRY_POINTS:
        _warnings.warn(
            f"repro.{name} is deprecated; use "
            f"{_DEPRECATED_ENTRY_POINTS[name]} instead",
            DeprecationWarning, stacklevel=2)
        from . import core as _core
        return getattr(_core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "api",
    "run",
    "Session",
    "SessionStateError",
    "resolve_config",
    "FRAMEWORK_NAMES",
    "FRAMEWORKS",
    "PAPER_LABELS",
    "FrameworkSpec",
    "SpLPG",
    "build_trainer",
    "run_framework",
    "TrainConfig",
    "TrainResult",
    "train_centralized",
    "EvalResult",
    "Evaluator",
    "auc",
    "hits_at_k",
    "DATASET_NAMES",
    "Graph",
    "dataset_spec",
    "load_dataset",
    "split_edges",
    "PartitionSpec",
    "partition_graph",
    "sparsify_with_level",
    "spielman_srivastava_sparsify",
    "__version__",
]
