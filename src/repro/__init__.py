"""repro — reproduction of "Demystifying Distributed Training of Graph
Neural Networks for Link Prediction" (ICDCS 2025).

The package implements SpLPG and every system it depends on from
scratch on numpy: graph storage, METIS-style partitioning,
effective-resistance sparsification, a GNN autograd stack
(GCN/GraphSAGE/GAT/GATv2), mini-batch samplers, and a simulated
distributed runtime with byte-exact communication accounting.

Quickstart
----------
>>> import repro
>>> graph = repro.load_dataset("cora", scale=0.2, feature_dim=64)
>>> split = repro.split_edges(graph)
>>> result = repro.SpLPG(num_parts=4).fit(split)   # doctest: +SKIP
"""

from .core import (
    FRAMEWORK_NAMES,
    FRAMEWORKS,
    PAPER_LABELS,
    FrameworkSpec,
    SpLPG,
    build_trainer,
    run_framework,
)
from .distributed import TrainConfig, TrainResult, train_centralized
from .eval import EvalResult, Evaluator, auc, hits_at_k
from .graph import (
    DATASET_NAMES,
    Graph,
    dataset_spec,
    load_dataset,
    split_edges,
)
from .partition import partition_graph
from .sparsify import sparsify_with_level, spielman_srivastava_sparsify

__version__ = "1.0.0"

__all__ = [
    "FRAMEWORK_NAMES",
    "FRAMEWORKS",
    "PAPER_LABELS",
    "FrameworkSpec",
    "SpLPG",
    "build_trainer",
    "run_framework",
    "TrainConfig",
    "TrainResult",
    "train_centralized",
    "EvalResult",
    "Evaluator",
    "auc",
    "hits_at_k",
    "DATASET_NAMES",
    "Graph",
    "dataset_spec",
    "load_dataset",
    "split_edges",
    "partition_graph",
    "sparsify_with_level",
    "spielman_srivastava_sparsify",
    "__version__",
]
