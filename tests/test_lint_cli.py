"""CLI contract for ``python -m repro.lint``.

Pins the exit codes (clean / findings / usage error), the JSON and
SARIF reporter schemas, the baseline workflow behind ``--deep``, and
the logical-statement suppression semantics the engine applies before
any reporter runs.
"""

import json
import textwrap

from repro.lint import lint_source
from repro.lint.__main__ import main

CLEAN = '"""A clean module."""\n\nX = 1\n'

DIRTY = textwrap.dedent('''\
    """A module with one determinism violation."""
    import numpy as np

    SAMPLE = np.random.rand(3)
    ''')

DEEP_DIRTY = textwrap.dedent('''\
    """A module with one deep violation (F203)."""


    def fetch(graph, nodes, meter):
        """Returns features without charging the meter."""
        return graph.features[nodes]
    ''')


def _project(tmp_path, name, source):
    """Write ``source`` under a ``repro/``-rooted package dir."""
    pkg = tmp_path / "repro"
    pkg.mkdir(exist_ok=True)
    path = pkg / name
    path.write_text(source, encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# exit codes
# ----------------------------------------------------------------------


def test_exit_zero_on_clean_tree(tmp_path, capsys):
    """No findings → exit 0 and a 'clean' line."""
    _project(tmp_path, "ok.py", CLEAN)
    assert main([str(tmp_path)]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_exit_one_on_findings(tmp_path, capsys):
    """Findings → exit 1, grep-able text locations."""
    _project(tmp_path, "bad.py", DIRTY)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "repro/bad.py:4" in out
    assert "R001" in out


def test_exit_one_on_parse_error(tmp_path, capsys):
    """A syntax error is an E999 finding, not a crash."""
    _project(tmp_path, "broken.py", "def f(:\n")
    assert main([str(tmp_path)]) == 1
    assert "E999" in capsys.readouterr().out


def test_exit_two_on_missing_path_and_unknown_rule(tmp_path, capsys):
    """Usage errors exit 2 and explain themselves on stderr."""
    assert main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err
    _project(tmp_path, "ok.py", CLEAN)
    assert main(["--select", "R999", str(tmp_path)]) == 2
    assert "unknown rule ids" in capsys.readouterr().err
    assert main(["--select", "F999", str(tmp_path)]) == 2
    assert "unknown deep analyses" in capsys.readouterr().err


def test_list_rules_covers_deep_catalogue(capsys):
    """--list-rules prints both the R-rules and the F-analyses."""
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R001", "F201", "F202", "F203", "F204"):
        assert rule_id in out


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------


def test_json_reporter_schema_round_trip(tmp_path, capsys):
    """The JSON payload carries every finding field, faithfully."""
    _project(tmp_path, "bad.py", DIRTY)
    assert main(["--format", "json", str(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro.lint"
    assert payload["total"] == len(payload["findings"]) == 1
    (entry,) = payload["findings"]
    assert set(entry) == {"rule", "path", "line", "col", "message"}
    assert entry["rule"] == "R001"
    assert entry["path"] == "repro/bad.py"
    assert entry["line"] == 4
    assert payload["counts"] == {"R001": 1}
    # Round-trip: the dict form reconstructs the same finding.
    from repro.lint import Finding

    finding = Finding(rule_id=entry["rule"], path=entry["path"],
                      line=entry["line"], col=entry["col"],
                      message=entry["message"])
    assert finding.to_dict() == entry


def test_sarif_reporter_emits_valid_log(tmp_path, capsys):
    """SARIF output: versioned log, rule catalogue, 1-based columns."""
    _project(tmp_path, "bad.py", DIRTY)
    _project(tmp_path, "deep.py", DEEP_DIRTY)
    assert main(["--deep", "--format", "sarif", str(tmp_path)]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    (run,) = log["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {"R001", "F201", "F202", "F203", "F204"} <= rule_ids
    by_rule = {res["ruleId"]: res for res in run["results"]}
    assert {"R001", "F203"} <= set(by_rule)
    region = (by_rule["R001"]["locations"][0]["physicalLocation"]
              ["region"])
    assert region["startLine"] == 4
    assert region["startColumn"] >= 1


# ----------------------------------------------------------------------
# --deep and the baseline workflow
# ----------------------------------------------------------------------


def test_deep_flag_adds_flow_findings(tmp_path, capsys):
    """Shallow runs miss F203; --deep reports it."""
    _project(tmp_path, "deep.py", DEEP_DIRTY)
    assert main([str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["--deep", str(tmp_path)]) == 1
    assert "F203" in capsys.readouterr().out


def test_select_deep_id_implies_deep_run(tmp_path, capsys):
    """--select F203 runs only that analysis, no shallow rules."""
    _project(tmp_path, "bad.py", DIRTY)
    _project(tmp_path, "deep.py", DEEP_DIRTY)
    assert main(["--select", "F203", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "F203" in out
    assert "R001" not in out


def test_baseline_workflow_gates_only_new_findings(tmp_path, capsys):
    """write-baseline → accepted; a new violation still fails."""
    _project(tmp_path, "deep.py", DEEP_DIRTY)
    baseline = tmp_path / "baseline.json"
    assert main(["--deep", str(tmp_path),
                 "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    assert payload["findings"][0]["rule"] == "F203"
    # Gated run: the accepted finding no longer fails CI.
    assert main(["--deep", str(tmp_path),
                 "--baseline", str(baseline)]) == 0
    assert "clean" in capsys.readouterr().out
    # A *new* violation in another function is beyond the baseline.
    _project(tmp_path, "deep2.py", DEEP_DIRTY.replace("fetch", "grab"))
    assert main(["--deep", str(tmp_path),
                 "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "grab" in out and "fetch" not in out


def test_corrupt_baseline_is_a_usage_error(tmp_path, capsys):
    """An unreadable or wrong-version baseline exits 2."""
    _project(tmp_path, "ok.py", CLEAN)
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"version": 99, "findings": []}')
    assert main(["--deep", str(tmp_path),
                 "--baseline", str(baseline)]) == 2
    assert "baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# logical-statement suppressions
# ----------------------------------------------------------------------


def test_suppression_covers_multiline_statement():
    """A disable on any physical line silences the whole statement."""
    src = textwrap.dedent('''\
        """Fixture."""
        import numpy as np

        SAMPLE = np.random.rand(
            3)  # lint: disable=R001
        ''')
    assert lint_source(src) == []


def test_suppression_on_decorator_covers_definition():
    """A disable on the decorator line covers the decorated def."""
    src = textwrap.dedent('''\
        """Fixture."""
        import functools


        @functools.lru_cache(maxsize=None)  # lint: disable=R104
        def helper():
            return 1
        ''')
    assert lint_source(src) == []
    undecorated = src.replace(
        "@functools.lru_cache(maxsize=None)  # lint: disable=R104\n", "")
    assert [f.rule_id for f in lint_source(undecorated)] == ["R104"]


def test_suppression_of_unknown_rule_id_keeps_other_findings():
    """Disabling an id that never fires must not silence real ones."""
    src = textwrap.dedent('''\
        """Fixture."""
        import numpy as np

        SAMPLE = np.random.rand(3)  # lint: disable=R999
        ''')
    assert [f.rule_id for f in lint_source(src)] == ["R001"]
    bare = src.replace("disable=R999", "disable")
    assert lint_source(bare) == []


def test_standalone_comment_does_not_suppress_next_statement():
    """Only the statement's own lines suppress — not a comment above."""
    src = textwrap.dedent('''\
        """Fixture."""
        import numpy as np

        # lint: disable=R001
        SAMPLE = np.random.rand(3)
        ''')
    assert [f.rule_id for f in lint_source(src)] == ["R001"]
