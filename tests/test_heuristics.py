"""Classical link-prediction heuristics."""

import numpy as np
import pytest

from repro.eval import (
    HEURISTICS,
    adamic_adar,
    auc,
    common_neighbors,
    heuristic_score,
    jaccard,
    katz_index,
    preferential_attachment,
    resource_allocation,
)
from repro.graph import Graph


@pytest.fixture
def square_with_diagonal():
    """0-1-2-3-0 cycle plus the 0-2 chord."""
    return Graph.from_edges(4, [[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]])


class TestCommonNeighbors:
    def test_counts(self, square_with_diagonal):
        # N(1) = {0,2}, N(3) = {0,2} -> 2 common
        out = common_neighbors(square_with_diagonal, np.array([[1, 3]]))
        assert out[0] == 2.0

    def test_no_common(self, path_graph):
        out = common_neighbors(path_graph, np.array([[0, 1]]))
        assert out[0] == 0.0


class TestJaccard:
    def test_value(self, square_with_diagonal):
        # N(1) = {0,2}, N(3) = {0,2}: J = 2/2 = 1
        out = jaccard(square_with_diagonal, np.array([[1, 3]]))
        assert out[0] == 1.0

    def test_isolated_pair_zero(self):
        g = Graph.from_edges(4, [[0, 1]])
        out = jaccard(g, np.array([[2, 3]]))
        assert out[0] == 0.0


class TestAdamicAdarRA:
    def test_adamic_adar_weighting(self, square_with_diagonal):
        # witnesses for (1,3): nodes 0 (deg 3) and 2 (deg 3)
        out = adamic_adar(square_with_diagonal, np.array([[1, 3]]))
        assert out[0] == pytest.approx(2.0 / np.log(3.0))

    def test_resource_allocation(self, square_with_diagonal):
        out = resource_allocation(square_with_diagonal, np.array([[1, 3]]))
        assert out[0] == pytest.approx(2.0 / 3.0)

    def test_degree_one_witness_skipped(self):
        # witness w has degree... make a path u-w-v: d_w = 2 fine;
        # a pendant witness cannot exist for a common neighbor, so
        # check deg-1 guard via a direct edge case instead.
        g = Graph.from_edges(3, [[0, 1], [1, 2]])
        out = adamic_adar(g, np.array([[0, 2]]))
        assert out[0] == pytest.approx(1.0 / np.log(2.0))


class TestPreferentialAttachment:
    def test_product(self, star_graph):
        out = preferential_attachment(star_graph, np.array([[0, 1], [1, 2]]))
        assert out.tolist() == [4.0, 1.0]


class TestKatz:
    def test_direct_edge_dominates(self, path_graph):
        scores = katz_index(path_graph, np.array([[0, 1], [0, 3]]),
                            beta=0.1)
        assert scores[0] > scores[1] > 0

    def test_disconnected_zero(self):
        g = Graph.from_edges(4, [[0, 1], [2, 3]])
        scores = katz_index(g, np.array([[0, 2]]))
        assert scores[0] == 0.0

    def test_beta_scaling(self, path_graph):
        lo = katz_index(path_graph, np.array([[0, 2]]), beta=0.01)
        hi = katz_index(path_graph, np.array([[0, 2]]), beta=0.1)
        assert hi[0] > lo[0]


class TestDispatch:
    def test_all_registered(self):
        assert set(HEURISTICS) == {
            "common_neighbors", "jaccard", "adamic_adar",
            "resource_allocation", "preferential_attachment", "katz"}

    def test_unknown(self, path_graph):
        with pytest.raises(ValueError):
            heuristic_score("simrank", path_graph, np.array([[0, 1]]))

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_shapes(self, name, featured_graph):
        pairs = featured_graph.edge_list()[:10]
        out = heuristic_score(name, featured_graph, pairs)
        assert out.shape == (10,)
        assert np.all(np.isfinite(out))


class TestPredictivePower:
    def test_heuristics_beat_chance_on_community_graph(self, small_split):
        """On a held-out split, neighborhood heuristics should score
        positives above random negatives (AUC > 0.5)."""
        graph = small_split.train_graph
        pos = small_split.test_pos
        neg = small_split.test_neg
        for name in ("common_neighbors", "adamic_adar", "katz"):
            pos_scores = heuristic_score(name, graph, pos)
            neg_scores = heuristic_score(name, graph, neg)
            assert auc(pos_scores, neg_scores) > 0.55, name
