"""Synchronization primitives and the distributed trainer loop."""

import numpy as np
import pytest

from repro.distributed import (
    CommMeter,
    TrainConfig,
    average_gradients,
    average_models,
    broadcast_model,
    train_centralized,
)
from repro.core import build_trainer, FRAMEWORKS
from repro.nn import build_model


def make_models(n, seed_offset=0):
    return [build_model("sage", 8, 4, num_layers=2, seed=10 + seed_offset + i)
            for i in range(n)]


class TestSync:
    def test_broadcast(self):
        models = make_models(3)
        broadcast_model(models[0], models[1:])
        ref = models[0].state_dict()
        for m in models[1:]:
            for name, arr in m.state_dict().items():
                assert np.allclose(arr, ref[name])

    def test_average_models_math(self):
        models = make_models(2)
        a = models[0].state_dict()
        b = models[1].state_dict()
        average_models(models)
        for name, arr in models[0].state_dict().items():
            assert np.allclose(arr, (a[name] + b[name]) / 2)
        for name, arr in models[1].state_dict().items():
            assert np.allclose(arr, (a[name] + b[name]) / 2)

    def test_average_gradients_math(self):
        models = make_models(2)
        for i, m in enumerate(models):
            for p in m.parameters():
                p.grad = np.full_like(p.data, float(i + 1))
        average_gradients(models)
        for m in models:
            for p in m.parameters():
                assert np.allclose(p.grad, 1.5)

    def test_average_gradients_participation_mask(self):
        models = make_models(3)
        for i, m in enumerate(models[:2]):
            for p in m.parameters():
                p.grad = np.full_like(p.data, float(i))
        average_gradients(models, participating=[True, True, False])
        # Average over the two participants = 0.5; non-participant
        # receives the same averaged gradient.
        for m in models:
            for p in m.parameters():
                assert np.allclose(p.grad, 0.5)

    def test_sync_charges_meters_allreduce(self):
        models = make_models(2)
        meters = [CommMeter(), CommMeter()]
        average_models(models, meters)
        # ring all-reduce on p=2: 2 * (p-1)/p = 1x the payload
        expected = models[0].parameter_nbytes()
        for meter in meters:
            assert meter.current.sync_bytes == expected
            assert meter.current.graph_data_bytes == 0

    def test_sync_charges_meters_parameter_server(self):
        models = make_models(2)
        meters = [CommMeter(), CommMeter()]
        average_models(models, meters, topology="parameter_server")
        expected = 2 * models[0].parameter_nbytes()
        for meter in meters:
            assert meter.current.sync_bytes == expected

    def test_sync_bytes_per_worker_model(self):
        from repro.distributed import sync_bytes_per_worker
        assert sync_bytes_per_worker(1000, 1) == 0
        assert sync_bytes_per_worker(1000, 4) == 1500  # 2*1000*3/4
        assert sync_bytes_per_worker(1000, 4,
                                     "parameter_server") == 2000
        with pytest.raises(ValueError):
            sync_bytes_per_worker(1000, 4, "mesh")

    def test_average_gradients_none_grads_tolerated(self):
        models = make_models(2)
        average_gradients(models)  # no grads set; should be a no-op
        for m in models:
            assert all(p.grad is None for p in m.parameters())


class TestTrainConfig:
    def test_invalid_sync(self):
        # "async" graduated to a real mode; unknown names still reject.
        with pytest.raises(ValueError):
            TrainConfig(sync="bulk_sync_parallel")

    def test_fanout_layer_mismatch(self):
        with pytest.raises(ValueError):
            TrainConfig(num_layers=2, fanouts=(5, 5, 5))


@pytest.fixture
def smoke_config():
    return TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                       fanouts=(5, 3), batch_size=64, epochs=2, hits_k=20,
                       eval_every=2, seed=3)


class TestDistributedTrainer:
    def test_workers_start_identical(self, small_split, smoke_config):
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 3,
                                smoke_config,
                                rng=np.random.default_rng(0))
        states = [w.model.state_dict() for w in trainer.workers]
        for sd in states[1:]:
            for name, arr in sd.items():
                assert np.allclose(arr, states[0][name])

    def test_grad_sync_keeps_replicas_identical(self, small_split,
                                                smoke_config):
        trainer = build_trainer(FRAMEWORKS["psgd_pa_plus"], small_split, 2,
                                smoke_config,
                                rng=np.random.default_rng(0))
        trainer.train()
        a, b = [w.model.state_dict() for w in trainer.workers]
        for name in a:
            assert np.allclose(a[name], b[name], atol=1e-8)

    def test_model_sync_converges_replicas(self, small_split):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=1,
                          hits_k=20, sync="model", seed=3)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2, cfg,
                                rng=np.random.default_rng(0))
        trainer.train()
        a, b = [w.model.state_dict() for w in trainer.workers]
        for name in a:  # averaged at epoch end => identical
            assert np.allclose(a[name], b[name])

    def test_result_structure(self, small_split, smoke_config):
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 2,
                                smoke_config,
                                rng=np.random.default_rng(0))
        result = trainer.train()
        assert result.framework == "splpg"
        assert len(result.history) == smoke_config.epochs
        assert 0.0 <= result.test.hits <= 1.0
        assert 0.0 <= result.test.auc <= 1.0
        assert result.num_workers == 2
        assert result.best_epoch >= 0

    def test_vanilla_framework_zero_graph_comm(self, small_split,
                                               smoke_config):
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                smoke_config,
                                rng=np.random.default_rng(0))
        result = trainer.train()
        assert result.comm_total.graph_data_bytes == 0

    def test_sharing_framework_positive_comm(self, small_split,
                                             smoke_config):
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 2,
                                smoke_config,
                                rng=np.random.default_rng(0))
        result = trainer.train()
        assert result.comm_total.graph_data_bytes > 0

    def test_loss_decreases(self, small_split):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=5,
                          hits_k=20, eval_every=5, seed=3)
        trainer = build_trainer(FRAMEWORKS["splpg_plus"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        result = trainer.train()
        losses = [s.mean_loss for s in result.history]
        assert losses[-1] < losses[0]


class TestCentralized:
    def test_trains_and_improves(self, small_split):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=5,
                          hits_k=20, eval_every=5, seed=3)
        result = train_centralized(small_split, cfg)
        losses = [s.mean_loss for s in result.history]
        assert losses[-1] < losses[0]
        assert result.comm_total.graph_data_bytes == 0
        assert result.num_workers == 1

    def test_requires_features(self, small_split):
        cfg = TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                          epochs=1)
        bare = small_split.train_graph.with_features(None)
        with pytest.raises(ValueError):
            train_centralized(small_split, cfg, graph=bare)

    def test_graph_override(self, small_split, rng):
        from repro.sparsify import sparsify_with_level
        cfg = TrainConfig(gnn_type="sage", hidden_dim=8, num_layers=2,
                          fanouts=(3, 3), batch_size=64, epochs=1,
                          hits_k=10, seed=0)
        sparse = sparsify_with_level(small_split.train_graph, 0.3, rng=rng)
        result = train_centralized(small_split, cfg, graph=sparse,
                                   framework="sparsified")
        assert result.framework == "sparsified"
