"""Master stores and worker graph views: dispatch + charging."""

import numpy as np
import pytest

from repro.distributed import (
    CommMeter,
    RemoteGraphStore,
    SparsifiedRemoteStore,
    WorkerGraphView,
)
from repro.distributed.comm import (
    BYTES_PER_EDGE,
    BYTES_PER_EDGE_WEIGHT,
    BYTES_PER_NODE_ID,
    FEATURE_ITEMSIZE,
)
from repro.partition import partition_graph
from repro.sparsify import sparsify_partitions


@pytest.fixture
def setup(featured_graph):
    rng = np.random.default_rng(3)
    pg = partition_graph(featured_graph, 3, "metis", rng=rng, mirror=True)
    sparsified = sparsify_partitions(pg, alpha=0.2, rng=rng)
    return featured_graph, pg, sparsified


class TestRemoteGraphStore:
    def test_serves_exact_neighbors(self, setup):
        graph, _, _ = setup
        store = RemoteGraphStore(graph)
        meter = CommMeter()
        nodes = np.array([0, 5])
        nbrs, _, offsets = store.neighbors_batch(nodes, meter)
        assert sorted(nbrs[offsets[0]:offsets[1]].tolist()) == \
            sorted(graph.neighbors(0).tolist())

    def test_charges_structure(self, setup):
        graph, _, _ = setup
        store = RemoteGraphStore(graph)
        meter = CommMeter()
        nodes = np.array([0, 5, 9])
        nbrs, _, _ = store.neighbors_batch(nodes, meter)
        assert meter.current.structure_bytes == \
            nbrs.size * BYTES_PER_EDGE + 3 * BYTES_PER_NODE_ID

    def test_fetch_features_charges(self, setup):
        graph, _, _ = setup
        store = RemoteGraphStore(graph)
        meter = CommMeter()
        feats = store.fetch_features(np.array([1, 2]), meter)
        assert feats.shape == (2, graph.feature_dim)
        assert meter.current.feature_bytes == \
            2 * graph.feature_dim * FEATURE_ITEMSIZE

    def test_none_meter_tolerated(self, setup):
        graph, _, _ = setup
        store = RemoteGraphStore(graph)
        store.neighbors_batch(np.array([0]), None)
        store.fetch_features(np.array([0]), None)


class TestSparsifiedRemoteStore:
    def test_answers_from_sparsified_copy(self, setup):
        graph, pg, sparsified = setup
        store = SparsifiedRemoteStore(graph, sparsified.graphs,
                                      pg.assignment)
        node = int(pg.owned_nodes(1)[0])
        nbrs, weights, offsets = store.neighbors_batch(
            np.array([node]), None)
        expected = sparsified.graphs[1].neighbors(node)
        assert sorted(nbrs.tolist()) == sorted(expected.tolist())

    def test_weighted_charging(self, setup):
        graph, pg, sparsified = setup
        store = SparsifiedRemoteStore(graph, sparsified.graphs,
                                      pg.assignment)
        meter = CommMeter()
        nodes = pg.owned_nodes(0)[:4]
        nbrs, _, _ = store.neighbors_batch(nodes, meter)
        assert meter.current.structure_bytes == \
            nbrs.size * (BYTES_PER_EDGE + BYTES_PER_EDGE_WEIGHT) + \
            4 * BYTES_PER_NODE_ID

    def test_mixed_partition_query(self, setup):
        graph, pg, sparsified = setup
        store = SparsifiedRemoteStore(graph, sparsified.graphs,
                                      pg.assignment)
        nodes = np.array([int(pg.owned_nodes(0)[0]),
                          int(pg.owned_nodes(2)[0]),
                          int(pg.owned_nodes(1)[0])])
        nbrs, _, offsets = store.neighbors_batch(nodes, None)
        for i, node in enumerate(nodes):
            owner = pg.assignment[node]
            expected = sparsified.graphs[owner].neighbors(int(node))
            assert sorted(nbrs[offsets[i]:offsets[i + 1]].tolist()) == \
                sorted(expected.tolist())

    def test_features_exact_not_sparsified(self, setup):
        graph, pg, sparsified = setup
        store = SparsifiedRemoteStore(graph, sparsified.graphs,
                                      pg.assignment)
        feats = store.fetch_features(np.array([3]), None)
        assert np.allclose(feats, graph.features[[3]])


class TestWorkerGraphView:
    def test_local_owned_query_free(self, setup):
        graph, pg, _ = setup
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=meter)
        owned = pg.owned_nodes(0)[:5]
        view.neighbors_batch(owned)
        assert meter.current.structure_bytes == 0

    def test_owned_full_neighbors_when_mirrored(self, setup):
        graph, pg, _ = setup
        view = WorkerGraphView(pg, 0, remote=None)
        node = int(pg.owned_nodes(0)[0])
        nbrs, _, _ = view.neighbors_batch(np.array([node]))
        assert sorted(nbrs.tolist()) == sorted(graph.neighbors(node).tolist())

    def test_remote_query_charged(self, setup):
        graph, pg, _ = setup
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=meter)
        foreign = pg.owned_nodes(1)[:3]
        view.neighbors_batch(foreign)
        assert meter.current.structure_bytes > 0

    def test_mixed_query_matches_sources(self, setup):
        graph, pg, _ = setup
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=CommMeter())
        nodes = np.array([int(pg.owned_nodes(0)[0]),
                          int(pg.owned_nodes(1)[0])])
        nbrs, _, offsets = view.neighbors_batch(nodes)
        # Both answered with exact full-graph neighborhoods here
        # (owned mirrored = full; foreign via full remote store).
        for i, node in enumerate(nodes):
            assert sorted(nbrs[offsets[i]:offsets[i + 1]].tolist()) == \
                sorted(graph.neighbors(int(node)).tolist())

    def test_no_remote_foreign_nodes_use_local_edges_only(self, setup):
        graph, pg, _ = setup
        view = WorkerGraphView(pg, 0, remote=None)
        foreign = int(pg.owned_nodes(1)[0])
        nbrs, _, _ = view.neighbors_batch(np.array([foreign]))
        local_nbrs = pg.local_graph(0).neighbors(foreign)
        assert sorted(nbrs.tolist()) == sorted(local_nbrs.tolist())

    def test_feature_fetch_remote_charged_once(self, setup):
        graph, pg, _ = setup
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=meter)
        local = pg.owned_nodes(0)[:2]
        foreign = pg.owned_nodes(1)[:3]
        # exclude mirrored halo nodes from 'foreign'
        foreign = foreign[~pg.has_feature_locally(0, foreign)]
        nodes = np.concatenate([local, foreign])
        view.fetch_features(nodes)
        assert meter.current.feature_bytes == \
            foreign.size * graph.feature_dim * FEATURE_ITEMSIZE

    def test_feature_fetch_no_remote_zero_fills(self, setup):
        graph, pg, _ = setup
        view = WorkerGraphView(pg, 0, remote=None)
        foreign = pg.owned_nodes(1)
        foreign = foreign[~pg.has_feature_locally(0, foreign)][:2]
        feats = view.fetch_features(foreign)
        assert np.allclose(feats, 0.0)

    def test_candidate_sets(self, setup):
        graph, pg, _ = setup
        view = WorkerGraphView(pg, 1, remote=None)
        assert np.array_equal(view.local_candidate_nodes(),
                              pg.owned_nodes(1))
        assert view.global_candidate_nodes().size == graph.num_nodes

    def test_features_required(self, setup):
        graph, pg, _ = setup
        pg_nofeat = partition_graph(graph.with_features(None), 2, "metis",
                                    rng=np.random.default_rng(0))
        view = WorkerGraphView(pg_nofeat, 0)
        with pytest.raises(ValueError):
            view.fetch_features(np.array([0]))
