"""Serving subsystem: artifact integrity, determinism, scheduling.

The headline contract under test: a serving run is bit-identical —
same :meth:`ServeReport.digest` — across the serial, thread and
process backends, including under a shard-outage fault plan.  Around
it: artifact export/checksum behavior, micro-batch scheduling, load
shedding, cache accounting, top-k semantics, the serve CLI, and lint
rule R107.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.distributed.store import RemoteGraphStore
from repro.faults import ClusterDeadError
from repro.faults.plan import FaultEvent, FaultPlan
from repro.graph import synthetic_lp_graph
from repro.lint import get_rule, lint_source
from repro.nn.tensor import Tensor
from repro.obs import RunObserver
from repro.serve import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    ScoreRequest,
    ServableArtifact,
    ServingCluster,
    TopKRequest,
    export_servable,
    synthetic_requests,
)
from repro.serve.__main__ import main as serve_main


@pytest.fixture(scope="module")
def served():
    """Train once, export once: (session, artifact, store, graph)."""
    rng = np.random.default_rng(41)
    graph = synthetic_lp_graph(num_nodes=150, target_edges=520,
                               feature_dim=16, num_communities=4, rng=rng)
    session = (Session(graph).partition(3).framework("psgd_pa")
               .scale("smoke").configure(seed=3).backend("serial"))
    session.train()
    artifact = session.export()
    store = RemoteGraphStore(session._trainer.partitioned.full)
    return session, artifact, store, graph


def _cluster(artifact, store=None, **kw):
    kw.setdefault("max_batch", 4)
    kw.setdefault("max_delay_s", 1e-3)
    kw.setdefault("max_queue", 32)
    return ServingCluster(artifact, store=store, **kw)


class TestArtifact:
    def test_roundtrip_preserves_everything(self, served, tmp_path):
        _, artifact, _, _ = served
        path = tmp_path / "model.servable.npz"
        checksum = artifact.save(path)
        loaded = ServableArtifact.load(path)
        assert loaded.checksum() == checksum == artifact.checksum()
        assert loaded.model_version == artifact.model_version
        assert loaded.predictor_kind == artifact.predictor_kind
        np.testing.assert_array_equal(loaded.assignment,
                                      artifact.assignment)
        np.testing.assert_array_equal(loaded.embedding_table(),
                                      artifact.embedding_table())

    def test_tampered_artifact_fails_checksum(self, served, tmp_path):
        from repro.nn.serialize import load_state_dict, save_state_dict

        _, artifact, _, _ = served
        path = tmp_path / "tampered.npz"
        artifact.save(path)
        state = load_state_dict(path)
        key = next(k for k in state if k.startswith("shard."))
        state[key] = state[key] + 1e-3  # corrupt one block
        save_state_dict(state, path)
        with pytest.raises(ValueError, match="checksum"):
            ServableArtifact.load(path)

    def test_export_is_deterministic(self, served):
        session, artifact, _, _ = served
        again = session.export()
        assert again.model_version == artifact.model_version
        assert again.checksum() == artifact.checksum()

    def test_embeddings_match_full_neighbor_encoder(self, served):
        """The table rows are exactly the centralized full-neighbor
        embeddings of the trained model on the master graph (the
        normalized ``partitioned.full``, which is what serving ties
        its scores to)."""
        from repro.sampling.neighbor import NeighborSampler

        session, artifact, _, _ = served
        model = session._trainer.workers[0].model
        master = session._trainer.partitioned.full
        nodes = np.array([0, 7, 42, 149], dtype=np.int64)
        sampler = NeighborSampler([-1] * model.encoder.num_layers,
                                  rng=np.random.default_rng(0))
        comp = sampler.sample(master, nodes)
        model.eval()
        try:
            expected = model.embed(comp,
                                   master.features[comp.input_nodes]).data
        finally:
            model.train()
        np.testing.assert_array_equal(artifact.embedding_table()[nodes],
                                      expected)

    def test_rebuilt_predictor_matches_trained_decoder(self, served):
        session, artifact, _, _ = served
        trained = session._trainer.workers[0].model.predictor
        rebuilt = artifact.build_predictor()
        table = artifact.embedding_table()
        h_u, h_v = Tensor(table[:20]), Tensor(table[20:40])
        np.testing.assert_array_equal(rebuilt(h_u, h_v).data,
                                      trained(h_u, h_v).data)

    def test_export_requires_training(self, served):
        _, _, _, graph = served
        fresh = Session(graph).partition(2)
        with pytest.raises(RuntimeError, match="train"):
            fresh.export()


class TestBackendDeterminism:
    BACKENDS = ("serial", "thread", "process")

    def _digest(self, artifact, store, backend, plan=None):
        requests = synthetic_requests(60, 150, seed=11, k=5)
        cluster = _cluster(artifact, store, backend=backend, plan=plan)
        with cluster:
            report = cluster.serve(
                OpenLoopWorkload(requests, rate_rps=3000.0, seed=12))
        return report

    def test_digest_identical_across_backends(self, served):
        _, artifact, store, _ = served
        reports = [self._digest(artifact, store, b) for b in self.BACKENDS]
        digests = {r.digest() for r in reports}
        assert len(digests) == 1
        assert all(r.counters == reports[0].counters for r in reports)

    def test_digest_identical_under_shard_outage(self, served):
        _, artifact, store, _ = served
        plan = FaultPlan(events=(
            FaultEvent(kind="crash", epoch=0, round=15, worker=1),
            FaultEvent(kind="store_outage", epoch=0, round=30, worker=2,
                       rounds=10),
        ))
        reports = [self._digest(artifact, store, b, plan=plan)
                   for b in self.BACKENDS]
        assert len({r.digest() for r in reports}) == 1
        assert reports[0].counters["rerouted"] > 0
        # The outage visibly changes the run relative to fault-free.
        assert reports[0].digest() != self._digest(
            artifact, store, "serial").digest()

    def test_all_shards_down_raises(self, served):
        _, artifact, store, _ = served
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="crash", epoch=0, round=0, worker=w)
            for w in range(3)))
        cluster = _cluster(artifact, store, plan=plan)
        requests = synthetic_requests(10, 150, seed=1)
        with pytest.raises(ClusterDeadError):
            cluster.serve(OpenLoopWorkload(requests, rate_rps=100.0,
                                           seed=2))


class TestServingSemantics:
    def test_pairwise_scores_match_decoder_on_table(self, served):
        _, artifact, store, _ = served
        requests = [ScoreRequest(u=int(u), v=int(v))
                    for u, v in [(0, 5), (10, 140), (77, 3), (9, 9)]]
        cluster = _cluster(artifact, store)
        report = cluster.serve(ClosedLoopWorkload(requests, num_clients=2))
        table = artifact.embedding_table()
        predictor = artifact.build_predictor()
        for outcome in report.completed():
            req = outcome.request
            expected = predictor(Tensor(table[[req.u]]),
                                 Tensor(table[[req.v]])).data[0]
            assert outcome.score == pytest.approx(expected, abs=1e-12)

    def test_topk_excludes_self_and_neighbors(self, served):
        _, artifact, store, _ = served
        node, k = 12, 7
        cluster = _cluster(artifact, store)
        report = cluster.serve(ClosedLoopWorkload(
            [TopKRequest(node=node, k=k)], num_clients=1))
        (outcome,) = report.completed()
        assert outcome.topk_nodes.shape == (k,)
        assert node not in outcome.topk_nodes
        nbrs, _, _ = store.neighbors_batch(
            np.array([node], dtype=np.int64), None)
        assert not set(outcome.topk_nodes).intersection(set(nbrs))
        # Deterministic order: descending score.
        assert np.all(np.diff(outcome.topk_scores) <= 0)

    def test_topk_without_store_excludes_only_self(self, served):
        _, artifact, _, _ = served
        cluster = _cluster(artifact, store=None)
        report = cluster.serve(ClosedLoopWorkload(
            [TopKRequest(node=3, k=149)], num_clients=1))
        (outcome,) = report.completed()
        # Every other node is a candidate.
        assert outcome.topk_nodes.shape == (149,)
        assert 3 not in outcome.topk_nodes

    def test_bounded_queue_sheds_load(self, served):
        _, artifact, store, _ = served
        requests = synthetic_requests(50, 150, seed=5, topk_fraction=0.0)
        cluster = _cluster(artifact, store, max_batch=1, max_queue=2)
        report = cluster.serve(
            OpenLoopWorkload(requests, rate_rps=1e8, seed=6))
        assert report.counters["shed"] > 0
        assert report.shed_rate() > 0
        shed = [o for o in report.outcomes if o.status == "shed"]
        assert shed and all(o.score is None for o in shed)
        # Shed + completed covers every admitted request.
        assert (report.counters["shed"] + report.counters["completed"]
                == len(report.outcomes))

    def test_micro_batching_batches(self, served):
        """Closed-loop burst at t=0 produces multi-request flushes."""
        _, artifact, store, _ = served
        requests = synthetic_requests(40, 150, seed=8, topk_fraction=0.0)
        cluster = _cluster(artifact, store, max_batch=8)
        report = cluster.serve(ClosedLoopWorkload(requests, num_clients=16))
        assert report.counters["flushes"] < report.counters["completed"]

    def test_embed_cache_hits_on_repeated_pairs(self, served):
        _, artifact, store, _ = served
        assignment = artifact.assignment
        u = 0
        v = int(np.flatnonzero(assignment != assignment[0])[0])
        requests = [ScoreRequest(u=u, v=v)] * 10
        cluster = _cluster(artifact, store, max_batch=1)
        report = cluster.serve(ClosedLoopWorkload(requests, num_clients=1))
        assert report.counters["embed_cache_hits"] > 0
        assert report.counters["embed_cache_misses"] > 0
        assert 0.0 < report.cache_hit_rate() < 1.0

    def test_straggle_event_delays_flush(self, served):
        _, artifact, store, _ = served
        delay = 0.05
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="straggle", epoch=0, round=0, worker=w,
                       delay_s=delay)
            for w in range(3)))
        requests = synthetic_requests(20, 150, seed=9, topk_fraction=0.0)
        base = _cluster(artifact, store).serve(
            OpenLoopWorkload(requests, rate_rps=2000.0, seed=10))
        slow = _cluster(artifact, store, plan=plan).serve(
            OpenLoopWorkload(requests, rate_rps=2000.0, seed=10))
        assert (slow.latencies_s().max()
                >= base.latencies_s().max() + delay * 0.99)

    def test_empty_workload_yields_empty_report(self, served):
        _, artifact, store, _ = served
        report = _cluster(artifact, store).serve(
            ClosedLoopWorkload([], num_clients=1))
        assert report.outcomes == []
        assert report.throughput_rps() == 0.0
        assert isinstance(report.digest(), str)
        assert "requests" in report.summary()

    def test_closed_cluster_refuses_serve(self, served):
        _, artifact, _, _ = served
        cluster = _cluster(artifact)
        cluster.close()
        cluster.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            cluster.serve(ClosedLoopWorkload([], num_clients=1))


class TestObservability:
    def test_serve_metrics_and_comm_mirror(self, served):
        _, artifact, store, _ = served
        observer = RunObserver()
        requests = synthetic_requests(30, 150, seed=14)
        cluster = _cluster(artifact, store, observer=observer)
        report = cluster.serve(OpenLoopWorkload(requests, rate_rps=2000.0,
                                                seed=15))
        metrics = observer.metrics
        assert (metrics.counter("serve.requests").value
                == len(report.outcomes))
        assert (metrics.counter("serve.flushes").value
                == report.counters["flushes"])
        assert (metrics.gauge("serve.queue_depth").value
                == report.counters["max_queue_depth"])
        # CommMeter mirror: observer counters equal the report ledger.
        assert (metrics.counter("comm.feature_bytes").value
                == report.comm.feature_bytes)
        assert (metrics.counter("comm.structure_bytes").value
                == report.comm.structure_bytes)


class TestServeCli:
    def test_smoke_exits_zero(self):
        assert serve_main(["--smoke", "--backends", "serial",
                           "thread"]) == 0


class TestServeLintRule:
    R107 = [get_rule("R107")]

    def _lint(self, code, modpath="repro/serve/handler.py"):
        return [f.rule_id for f in lint_source(code, modpath=modpath,
                                               rules=self.R107)]

    def test_raw_csr_access_flagged(self):
        assert self._lint("x = graph.indptr[5]\n") == ["R107"]

    def test_master_features_flagged(self):
        assert self._lint("f = pg.full.features[nodes]\n") == ["R107"]

    def test_neighbor_source_flagged(self):
        assert self._lint("s = GraphNeighborSource(g)\n") == ["R107"]

    def test_unbounded_deque_flagged(self):
        assert self._lint("q = deque()\n") == ["R107"]
        assert self._lint("from collections import deque\n"
                          "q = deque([1, 2])\n") == ["R107"]

    def test_bounded_deque_clean(self):
        assert self._lint("q = deque(maxlen=32)\n") == []

    def test_unbounded_queue_flagged(self):
        assert self._lint("q = Queue()\n") == ["R107"]
        assert self._lint("q = queue.Queue(0)\n") == ["R107"]

    def test_bounded_queue_clean(self):
        assert self._lint("q = Queue(maxsize=64)\n") == []

    def test_artifact_module_exempt(self):
        assert self._lint("x = graph.indptr[5]\n",
                          modpath="repro/serve/artifact.py") == []

    def test_out_of_scope_modules_clean(self):
        assert self._lint("q = deque()\n",
                          modpath="repro/obs/trace.py") == []

    def test_suppression_comment(self):
        assert self._lint(
            "x = graph.indptr[5]  # lint: disable=R107\n") == []
