"""Unit tests for the CSR Graph substrate."""

import numpy as np
import pytest

from repro.graph import Graph, GraphError


class TestConstruction:
    def test_from_edges_basic(self, path_graph):
        assert path_graph.num_nodes == 4
        assert path_graph.num_edges == 3
        assert path_graph.num_directed_edges == 6

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0
        assert g.degrees.tolist() == [0] * 5

    def test_self_loops_dropped(self):
        g = Graph.from_edges(3, [[0, 0], [0, 1], [2, 2]])
        assert g.num_edges == 1
        assert g.has_edge(0, 1)

    def test_duplicate_edges_merged(self):
        g = Graph.from_edges(3, [[0, 1], [1, 0], [0, 1]])
        assert g.num_edges == 1

    def test_duplicate_weights_summed(self):
        g = Graph.from_edges(3, [[0, 1], [1, 0]], edge_weights=[2.0, 3.0])
        assert g.edge_weight_list().tolist() == [5.0]

    def test_no_dedup_mode_keeps_weights_separate(self):
        # dedup=False is internal; duplicates then appear twice.
        g = Graph.from_edges(3, [[0, 1], [0, 2]], dedup=False)
        assert g.num_edges == 2

    def test_endpoint_out_of_range(self):
        with pytest.raises(GraphError):
            Graph.from_edges(2, [[0, 5]])

    def test_negative_endpoint(self):
        with pytest.raises(GraphError):
            Graph.from_edges(2, [[-1, 0]])

    def test_bad_shape(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, np.zeros((2, 3), dtype=np.int64))

    def test_nonpositive_num_nodes(self):
        with pytest.raises(GraphError):
            Graph.from_edges(0, [])

    def test_invalid_indptr(self):
        with pytest.raises(GraphError):
            Graph(np.array([1, 2]), np.array([0]))

    def test_indptr_not_matching_indices(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 2]), np.array([0]))

    def test_features_shape_validation(self):
        with pytest.raises(GraphError):
            Graph.from_edges(3, [[0, 1]], features=np.zeros((2, 4)))

    def test_weights_shape_validation(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 1, 2]), np.array([1, 0]),
                  weights=np.array([1.0]))

    def test_edge_list_array_input(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        g = Graph.from_edges(3, edges)
        assert g.num_edges == 2


class TestQueries:
    def test_degrees(self, star_graph):
        assert star_graph.degree(0) == 4
        assert star_graph.degrees.tolist() == [4, 1, 1, 1, 1]

    def test_neighbors(self, path_graph):
        assert sorted(path_graph.neighbors(1).tolist()) == [0, 2]
        assert path_graph.neighbors(0).tolist() == [1]

    def test_neighbor_weights_unweighted(self, path_graph):
        assert path_graph.neighbor_weights(1).tolist() == [1.0, 1.0]

    def test_neighbor_weights_weighted(self):
        g = Graph.from_edges(3, [[0, 1], [1, 2]], edge_weights=[2.0, 7.0])
        w = dict(zip(g.neighbors(1).tolist(),
                     g.neighbor_weights(1).tolist()))
        assert w == {0: 2.0, 2: 7.0}

    def test_has_edge(self, triangle_graph):
        assert triangle_graph.has_edge(0, 2)
        assert triangle_graph.has_edge(2, 0)
        assert not triangle_graph.has_edge(0, 0)

    def test_edge_list_sorted_lo_hi(self, cycle_graph):
        edges = cycle_graph.edge_list()
        assert edges.shape == (5, 2)
        assert np.all(edges[:, 0] < edges[:, 1])
        # lexicographic ordering
        keys = edges[:, 0] * 5 + edges[:, 1]
        assert np.all(np.diff(keys) > 0)

    def test_edge_weight_list_alignment(self):
        g = Graph.from_edges(4, [[2, 3], [0, 1]], edge_weights=[5.0, 9.0])
        edges = g.edge_list()
        weights = g.edge_weight_list()
        lookup = {tuple(e): w for e, w in zip(edges.tolist(), weights)}
        assert lookup[(0, 1)] == 9.0
        assert lookup[(2, 3)] == 5.0

    def test_feature_dim(self):
        g = Graph.from_edges(3, [[0, 1]], features=np.zeros((3, 7)))
        assert g.feature_dim == 7
        assert Graph.from_edges(3, [[0, 1]]).feature_dim == 0


class TestTransformations:
    def test_subgraph_relabel(self, cycle_graph):
        sub = cycle_graph.subgraph(np.array([0, 1, 2]))
        assert sub.num_nodes == 3
        assert sub.num_edges == 2  # 0-1, 1-2 survive; 4-0 and 3-4 don't

    def test_subgraph_keep_ids(self, cycle_graph):
        sub = cycle_graph.subgraph(np.array([0, 1, 2]), relabel=False)
        assert sub.num_nodes == 5
        assert sub.num_edges == 2
        assert sub.degree(4) == 0

    def test_subgraph_slices_features(self):
        feats = np.arange(12, dtype=np.float32).reshape(4, 3)
        g = Graph.from_edges(4, [[0, 1], [2, 3]], features=feats)
        sub = g.subgraph(np.array([2, 3]))
        assert np.allclose(sub.features, feats[[2, 3]])

    def test_subgraph_duplicate_nodes_rejected(self, cycle_graph):
        with pytest.raises(GraphError):
            cycle_graph.subgraph(np.array([0, 0, 1]))

    def test_subgraph_preserves_weights(self):
        g = Graph.from_edges(4, [[0, 1], [1, 2]], edge_weights=[3.0, 4.0])
        sub = g.subgraph(np.array([0, 1]))
        assert sub.edge_weight_list().tolist() == [3.0]

    def test_edge_subgraph(self, cycle_graph):
        sub = cycle_graph.edge_subgraph(np.array([[0, 1], [2, 3]]))
        assert sub.num_nodes == 5
        assert sub.num_edges == 2

    def test_remove_edges(self, triangle_graph):
        g = triangle_graph.remove_edges(np.array([[0, 1]]))
        assert g.num_edges == 2
        assert not g.has_edge(0, 1)

    def test_remove_edges_orientation_insensitive(self, triangle_graph):
        g = triangle_graph.remove_edges(np.array([[1, 0]]))
        assert not g.has_edge(0, 1)

    def test_with_features(self, path_graph):
        feats = np.ones((4, 2), dtype=np.float32)
        g = path_graph.with_features(feats)
        assert g.feature_dim == 2
        assert g.num_edges == path_graph.num_edges


class TestMatrixViews:
    def test_adjacency_symmetric(self, cycle_graph):
        adj = cycle_graph.adjacency().toarray()
        assert np.allclose(adj, adj.T)
        assert adj.sum() == 2 * cycle_graph.num_edges

    def test_adjacency_weighted(self):
        g = Graph.from_edges(2, [[0, 1]], edge_weights=[3.5])
        assert g.adjacency().toarray()[0, 1] == 3.5
        assert g.adjacency(weighted=False).toarray()[0, 1] == 1.0


class TestSizes:
    def test_structure_nbytes(self, path_graph):
        expected = path_graph.indptr.nbytes + path_graph.indices.nbytes
        assert path_graph.structure_nbytes() == expected

    def test_feature_nbytes(self):
        g = Graph.from_edges(4, [[0, 1]],
                             features=np.zeros((4, 8), dtype=np.float32))
        assert g.feature_nbytes() == 4 * 8 * 4
        assert g.feature_nbytes(num_nodes=2) == 2 * 8 * 4

    def test_feature_nbytes_no_features(self, path_graph):
        assert path_graph.feature_nbytes() == 0

    def test_total_nbytes(self):
        g = Graph.from_edges(4, [[0, 1]],
                             features=np.zeros((4, 2), dtype=np.float32))
        assert g.total_nbytes() == g.structure_nbytes() + g.feature_nbytes()
