"""Graph analysis utilities."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    connected_components,
    degree_histogram,
    giant_component_fraction,
    global_clustering_coefficient,
    graph_stats,
    modularity,
    partition_report,
    power_law_tail_ratio,
    synthetic_lp_graph,
)


class TestComponents:
    def test_single_component(self, cycle_graph):
        labels = connected_components(cycle_graph)
        assert np.unique(labels).size == 1
        assert giant_component_fraction(cycle_graph) == 1.0

    def test_two_components(self):
        g = Graph.from_edges(6, [[0, 1], [1, 2], [3, 4]])
        labels = connected_components(g)
        assert np.unique(labels).size == 3  # {0,1,2}, {3,4}, {5}
        assert giant_component_fraction(g) == pytest.approx(0.5)


class TestClustering:
    def test_triangle_is_one(self, triangle_graph):
        assert global_clustering_coefficient(triangle_graph) == \
            pytest.approx(1.0)

    def test_star_is_zero(self, star_graph):
        assert global_clustering_coefficient(star_graph) == 0.0

    def test_path_is_zero(self, path_graph):
        assert global_clustering_coefficient(path_graph) == 0.0

    def test_bounded(self, featured_graph):
        c = global_clustering_coefficient(featured_graph)
        assert 0.0 <= c <= 1.0


class TestDegreeStats:
    def test_histogram(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist[1] == 4 and hist[4] == 1

    def test_tail_ratio_skewed(self, rng):
        from repro.graph import chung_lu_graph
        skewed = chung_lu_graph(600, 2500, exponent=2.1, rng=rng)
        assert power_law_tail_ratio(skewed) > 2.0

    def test_tail_ratio_regular(self, cycle_graph):
        assert power_law_tail_ratio(cycle_graph) == pytest.approx(1.0)


class TestGraphStats:
    def test_fields(self, featured_graph):
        stats = graph_stats(featured_graph)
        assert stats.num_nodes == featured_graph.num_nodes
        assert stats.num_edges == featured_graph.num_edges
        assert stats.min_degree <= stats.mean_degree <= stats.max_degree
        assert 0 < stats.giant_component_fraction <= 1.0
        d = stats.as_dict()
        assert d["num_nodes"] == featured_graph.num_nodes


class TestModularity:
    def test_perfect_communities_positive(self):
        # two triangles joined by one edge, labeled by triangle
        g = Graph.from_edges(6, [[0, 1], [1, 2], [0, 2],
                                 [3, 4], [4, 5], [3, 5], [2, 3]])
        q = modularity(g, np.array([0, 0, 0, 1, 1, 1]))
        assert q > 0.3

    def test_single_community_zero_ish(self, triangle_graph):
        q = modularity(triangle_graph, np.zeros(3, dtype=np.int64))
        assert q == pytest.approx(0.0)

    def test_label_length_checked(self, triangle_graph):
        with pytest.raises(ValueError):
            modularity(triangle_graph, np.array([0, 1]))

    def test_generator_communities_high_modularity(self, rng):
        from repro.graph import community_graph
        g, comm = community_graph(300, 1200, num_communities=6,
                                  intra_fraction=0.9, rng=rng)
        assert modularity(g, comm) > 0.4


class TestPartitionReport:
    def test_metis_report(self, featured_graph, rng):
        from repro.partition import metis_partition
        a = metis_partition(featured_graph, 4, rng=rng)
        report = partition_report(featured_graph, a)
        assert report["num_parts"] == 4
        assert 0 <= report["cut_fraction"] <= 1
        assert report["balance"] >= 1.0

    def test_metis_beats_random_modularity(self, featured_graph):
        from repro.partition import metis_partition, random_tma_partition
        rng = np.random.default_rng(0)
        metis_q = partition_report(
            featured_graph,
            metis_partition(featured_graph, 4, rng=rng))["modularity"]
        random_q = partition_report(
            featured_graph,
            random_tma_partition(featured_graph, 4, rng=rng))["modularity"]
        assert metis_q > random_q


class TestKHop:
    def test_path_graph_sizes(self, path_graph):
        from repro.graph import k_hop_sizes
        sizes = k_hop_sizes(path_graph, np.array([0, 1]), k=1)
        assert sizes.tolist() == [1, 2]
        sizes2 = k_hop_sizes(path_graph, np.array([0]), k=3)
        assert sizes2.tolist() == [3]

    def test_star_one_hop(self, star_graph):
        from repro.graph import k_hop_sizes
        assert k_hop_sizes(star_graph, np.array([0]), 1).tolist() == [4]
        assert k_hop_sizes(star_graph, np.array([1]), 2).tolist() == [4]

    def test_isolated_node(self):
        from repro.graph import Graph, k_hop_sizes
        g = Graph.from_edges(3, [[0, 1]])
        assert k_hop_sizes(g, np.array([2]), 3).tolist() == [0]

    def test_invalid_k(self, path_graph):
        from repro.graph import k_hop_sizes
        with pytest.raises(ValueError):
            k_hop_sizes(path_graph, np.array([0]), 0)

    def test_mean_k_hop_monotone_in_k(self, featured_graph):
        from repro.graph import mean_k_hop_size
        rng = np.random.default_rng(0)
        one = mean_k_hop_size(featured_graph, 1, rng=rng)
        two = mean_k_hop_size(featured_graph, 2, rng=rng)
        assert two > one > 0
