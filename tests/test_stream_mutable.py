"""MutableGraph: delta application, snapshots, durable state."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.stream import ArrivalPlan, MutableGraph, StreamEvent


def _featured(num_nodes=8, dim=3):
    edges = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]]
    features = np.arange(num_nodes * dim,
                         dtype=np.float32).reshape(num_nodes, dim)
    return Graph.from_edges(num_nodes, edges, features=features)


class TestApply:
    def test_insert_delete_drift(self):
        mutable = MutableGraph(_featured())
        delta = mutable.apply([
            StreamEvent("insert", 0, u=5, v=7),
            StreamEvent("delete", 0, u=0, v=1),
            StreamEvent("drift", 0, u=2, scale=0.5),
        ], tick=0)
        assert delta.inserted.tolist() == [[5, 7]]
        assert delta.deleted.tolist() == [[0, 1]]
        assert delta.drifted.tolist() == [2]
        assert delta.skipped == 0
        snap = mutable.snapshot()
        assert snap.num_edges == 5  # 5 - 1 + 1
        assert np.allclose(snap.features[2],
                           _featured().features[2] + 0.5)

    def test_duplicate_insert_and_missing_delete_skip(self):
        mutable = MutableGraph(_featured())
        delta = mutable.apply([
            StreamEvent("insert", 0, u=0, v=1),   # already present
            StreamEvent("delete", 0, u=6, v=7),   # never existed
        ], tick=0)
        assert delta.is_empty()
        assert delta.skipped == 2

    def test_touched_nodes_cover_all_event_endpoints(self):
        mutable = MutableGraph(_featured())
        delta = mutable.apply([
            StreamEvent("insert", 0, u=5, v=7),
            StreamEvent("drift", 0, u=1, scale=0.1),
        ], tick=0)
        assert delta.touched_nodes().tolist() == [1, 5, 7]

    def test_snapshot_is_isolated(self):
        mutable = MutableGraph(_featured())
        before = mutable.snapshot()
        mutable.apply([StreamEvent("drift", 0, u=0, scale=1.0)], tick=0)
        assert before.features[0, 0] == _featured().features[0, 0]

    def test_fingerprint_tracks_every_mutation_kind(self):
        mutable = MutableGraph(_featured())
        prints = {mutable.fingerprint()}
        for event in (StreamEvent("insert", 0, u=5, v=7),
                      StreamEvent("delete", 0, u=0, v=1),
                      StreamEvent("drift", 0, u=3, scale=0.2)):
            mutable.apply([event], tick=0)
            prints.add(mutable.fingerprint())
        assert len(prints) == 4

    def test_replaying_plan_reproduces_fingerprint(self):
        plan = ArrivalPlan.generate(8, ticks=4, seed=3)
        runs = []
        for _ in range(2):
            mutable = MutableGraph(_featured())
            for tick in range(4):
                mutable.apply(plan.events_at(tick), tick)
            runs.append(mutable.fingerprint())
        assert runs[0] == runs[1]


class TestState:
    def test_state_arrays_round_trip(self):
        mutable = MutableGraph(_featured())
        mutable.apply([StreamEvent("insert", 0, u=5, v=7),
                       StreamEvent("drift", 0, u=2, scale=-0.5)], tick=0)
        clone = MutableGraph.from_state_arrays(mutable.state_arrays())
        assert clone.fingerprint() == mutable.fingerprint()
        a, b = clone.snapshot(), mutable.snapshot()
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.features, b.features)

    def test_featureless_drift_is_skipped_not_applied(self):
        bare = Graph.from_edges(4, [[0, 1], [1, 2]])
        delta = MutableGraph(bare).apply(
            [StreamEvent("drift", 0, u=0, scale=1.0)], tick=0)
        assert delta.skipped == 1
        assert delta.drifted.size == 0
