"""Unit tests for the multilevel partitioner's internal stages."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.partition.metis import (
    _coarsen,
    _greedy_initial_partition,
    _heavy_edge_matching,
    _refine,
    _to_coarse,
    edge_cut,
)


@pytest.fixture
def two_triangles():
    """Two triangles joined by a single light edge."""
    return Graph.from_edges(6, [[0, 1], [1, 2], [0, 2],
                                [3, 4], [4, 5], [3, 5], [2, 3]])


class TestMatching:
    def test_matching_is_symmetric(self, two_triangles, rng):
        g = _to_coarse(two_triangles)
        match = _heavy_edge_matching(g, rng)
        for u in range(g.num_nodes):
            assert match[match[u]] == u

    def test_matching_prefers_heavy_edges(self, rng):
        # node 0 has a weight-10 edge to 1 and weight-1 edge to 2
        g = Graph.from_edges(3, [[0, 1], [0, 2]], edge_weights=[10.0, 1.0])
        matched_01 = 0
        for seed in range(20):
            match = _heavy_edge_matching(
                _to_coarse(g), np.random.default_rng(seed))
            if match[0] == 1:
                matched_01 += 1
        # 0-1 is chosen whenever node 0 or 1 is visited first (prob 2/3);
        # only "2 first" (prob 1/3) can steal node 0.
        assert matched_01 >= 10

    def test_isolated_node_self_matched(self, rng):
        g = Graph.from_edges(3, [[0, 1]])
        match = _heavy_edge_matching(_to_coarse(g), rng)
        assert match[2] == 2


class TestCoarsen:
    def test_node_weights_conserved(self, two_triangles, rng):
        g = _to_coarse(two_triangles)
        match = _heavy_edge_matching(g, rng)
        coarse, mapping = _coarsen(g, match)
        assert coarse.node_weight.sum() == g.node_weight.sum()
        assert mapping.shape == (6,)
        assert mapping.max() == coarse.num_nodes - 1

    def test_edge_weight_conserved_minus_internal(self, two_triangles, rng):
        g = _to_coarse(two_triangles)
        match = _heavy_edge_matching(g, rng)
        coarse, mapping = _coarsen(g, match)
        # Total directed edge weight shrinks exactly by collapsed
        # (intra-pair) edges.
        internal = sum(
            1.0 for u in range(6)
            for v in two_triangles.neighbors(u)
            if match[u] == v
        )
        assert coarse.edge_weight.sum() == pytest.approx(
            g.edge_weight.sum() - internal)

    def test_coarse_graph_halves(self, rng):
        # perfect matching on a cycle halves the node count
        g = Graph.from_edges(8, [[i, (i + 1) % 8] for i in range(8)])
        cg = _to_coarse(g)
        match = _heavy_edge_matching(cg, rng)
        coarse, _ = _coarsen(cg, match)
        assert coarse.num_nodes == 4


class TestInitialPartition:
    def test_covers_and_balances(self, rng):
        g = _to_coarse(Graph.from_edges(
            12, [[i, (i + 1) % 12] for i in range(12)]))
        assign = _greedy_initial_partition(g, 3, rng)
        assert assign.min() >= 0 and assign.max() <= 2
        counts = np.bincount(assign, minlength=3)
        assert counts.max() <= 8  # roughly balanced on a cycle


class TestRefine:
    def test_refinement_never_worsens_cut(self, two_triangles, rng):
        g = _to_coarse(two_triangles)
        # adversarial start: split each triangle across partitions
        assign = np.array([0, 1, 0, 1, 0, 1])
        before = edge_cut(two_triangles, assign)
        refined = _refine(g, assign.copy(), 2, balance_factor=1.4,
                          passes=4)
        after = edge_cut(two_triangles, refined)
        assert after <= before

    def test_refinement_finds_natural_cut(self, two_triangles, rng):
        g = _to_coarse(two_triangles)
        assign = np.array([0, 1, 0, 1, 0, 1])
        refined = _refine(g, assign.copy(), 2, balance_factor=1.4,
                          passes=8)
        # the natural bisection cuts exactly the bridge edge
        assert edge_cut(two_triangles, refined) == 1
