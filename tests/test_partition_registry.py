"""Partitioner registry, PartitionSpec plumbing, vertex-cut ownership."""

import json

import numpy as np
import pytest

from repro import Session, TrainConfig
from repro.core.frameworks import run_framework
from repro.graph import Graph, synthetic_lp_graph
from repro.lint import get_rule, lint_source
from repro.partition import (
    PartitionedGraph,
    Partitioner,
    PartitionSpec,
    get_partitioner,
    register,
    registered_partitioners,
    unregister,
    vertex_cut_partition,
)


@pytest.fixture(scope="module")
def community_g():
    rng = np.random.default_rng(7)
    return synthetic_lp_graph(num_nodes=300, target_edges=1200,
                              feature_dim=8, num_communities=8,
                              intra_fraction=0.9, rng=rng)


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_partitioners()
        assert {"metis", "random_tma", "super_tma", "ldg",
                "vertex_cut"} <= set(names)

    def test_capabilities(self):
        assert get_partitioner("metis").supports_mirror
        assert not get_partitioner("metis").edge_partitioned
        vc = get_partitioner("vertex_cut")
        assert vc.edge_partitioned
        assert not vc.supports_mirror

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="metis"):
            get_partitioner("spectral")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(Partitioner("metis", lambda g, k, rng=None: None))

    def test_register_rejects_non_partitioner(self):
        with pytest.raises(TypeError):
            register(lambda g, k, rng=None: None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register(Partitioner("", lambda g, k, rng=None: None))

    def test_unregister_is_idempotent(self):
        unregister("never_registered")  # no-op, no raise

    def test_decorator_form_and_end_to_end(self, community_g):
        """A plugin strategy registered through the decorator is fully
        usable via PartitionSpec — no other call site needs editing."""
        try:
            @register(name="halves", description="first half to part 0")
            def halves_partition(graph, num_parts, rng=None):
                a = np.zeros(graph.num_nodes, dtype=np.int64)
                a[graph.num_nodes // 2:] = num_parts - 1
                return a

            assert "halves" in registered_partitioners()
            pg = PartitionSpec(strategy="halves").build(
                community_g, 2, rng=np.random.default_rng(0))
            assert pg.num_parts == 2
            assert np.array_equal(
                np.sort(np.concatenate([pg.owned_nodes(0),
                                        pg.owned_nodes(1)])),
                np.arange(community_g.num_nodes))
        finally:
            unregister("halves")
        with pytest.raises(ValueError):
            get_partitioner("halves")


class TestPartitionSpec:
    def test_canonicalize_string(self):
        spec = PartitionSpec.canonicalize("random_tma")
        assert spec == PartitionSpec(strategy="random_tma")

    def test_canonicalize_passthrough(self):
        spec = PartitionSpec(strategy="ldg")
        assert PartitionSpec.canonicalize(spec) is spec

    def test_canonicalize_dict(self):
        spec = PartitionSpec.canonicalize(
            {"strategy": "metis", "mirror": True})
        assert spec.strategy == "metis" and spec.mirror

    def test_canonicalize_rejects_other_types(self):
        with pytest.raises(ValueError, match="PartitionSpec"):
            PartitionSpec.canonicalize(42)

    def test_unknown_strategy_rejected_eagerly(self):
        with pytest.raises(ValueError, match="registered"):
            PartitionSpec(strategy="spectral")

    def test_mirror_on_edge_partitioned_rejected(self):
        with pytest.raises(ValueError, match="inherently mirrored"):
            PartitionSpec(strategy="vertex_cut", mirror=True)

    def test_knobs_must_be_mapping(self):
        with pytest.raises(ValueError, match="mapping"):
            PartitionSpec(strategy="metis", knobs=[1, 2])

    def test_json_round_trip(self):
        spec = PartitionSpec(strategy="vertex_cut",
                             knobs={"balance_factor": 1.3})
        rebuilt = PartitionSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            PartitionSpec.from_dict({"strategy": "metis", "parts": 4})

    def test_edge_partitioned_property(self):
        assert PartitionSpec(strategy="vertex_cut").edge_partitioned
        assert not PartitionSpec(strategy="metis").edge_partitioned

    def test_knobs_reach_the_partitioner(self, community_g):
        """balance_factor flows through build(); a looser cap may change
        the layout but must never break the total edge cover."""
        pg = PartitionSpec(strategy="vertex_cut",
                           knobs={"balance_factor": 2.0}).build(
            community_g, 4, rng=np.random.default_rng(0))
        total = sum(pg.owned_edges(p).shape[0] for p in range(4))
        assert total == community_g.num_edges


class TestTrainConfigPartition:
    def test_string_is_canonicalized(self):
        cfg = TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                          partition="vertex_cut")
        assert isinstance(cfg.partition, PartitionSpec)
        assert cfg.partition.strategy == "vertex_cut"

    def test_dict_is_canonicalized(self):
        cfg = TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                          partition={"strategy": "metis", "mirror": True})
        assert cfg.partition == PartitionSpec(strategy="metis",
                                              mirror=True)

    def test_default_is_none(self):
        cfg = TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3))
        assert cfg.partition is None

    def test_invalid_strategy_fails_at_config_time(self):
        with pytest.raises(ValueError):
            TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                        partition="spectral")


class TestSessionPartition:
    def test_chainable(self, small_split):
        s = Session(small_split)
        assert s.partition(2, "vertex_cut") is s
        assert s.config().partition.strategy == "vertex_cut"

    def test_workers_only_form_unchanged(self, small_split):
        s = Session(small_split).partition(3)
        assert s.config().partition is None
        assert s._workers == 3

    def test_string_with_mirror_and_knobs(self, small_split):
        s = Session(small_split).partition(
            2, "vertex_cut", balance_factor=1.5)
        spec = s.config().partition
        assert spec.knobs == {"balance_factor": 1.5}

    def test_spec_instance_rejects_extra_knobs(self, small_split):
        spec = PartitionSpec(strategy="metis")
        with pytest.raises(ValueError, match="inside"):
            Session(small_split).partition(2, spec, mirror=True)

    def test_dict_rejects_extra_knobs(self, small_split):
        with pytest.raises(ValueError, match="inside"):
            Session(small_split).partition(
                2, {"strategy": "metis"}, mirror=True)

    def test_mirror_without_strategy_rejected(self, small_split):
        with pytest.raises(ValueError, match="need a strategy"):
            Session(small_split).partition(2, mirror=True)

    def test_invalid_workers(self, small_split):
        with pytest.raises(ValueError):
            Session(small_split).partition(0)

    def test_trains_under_vertex_cut(self, small_split):
        result = (Session(small_split)
                  .partition(2, "vertex_cut")
                  .framework("vertex_cut")
                  .configure(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                             batch_size=32, epochs=1, eval_every=1,
                             seed=0)
                  .train())
        assert np.isfinite(result.test.auc)
        assert result.sync_stats["replica_sync_bytes"] > 0


class TestVertexCutOwnership:
    @pytest.fixture(scope="class")
    def pg(self, community_g):
        assignment = vertex_cut_partition(
            community_g, 4, rng=np.random.default_rng(0))
        return PartitionedGraph.build_edge_partitioned(
            community_g, assignment, 4)

    def test_edges_disjointly_cover_graph(self, pg, community_g):
        chunks = [pg.owned_edges(p) for p in range(4)]
        total = np.concatenate(chunks)
        assert total.shape[0] == community_g.num_edges
        full = community_g.edge_list()
        assert (set(map(tuple, np.sort(total, axis=1).tolist()))
                == set(map(tuple, np.sort(full, axis=1).tolist())))

    def test_master_is_a_replica(self, pg, community_g):
        for node in range(community_g.num_nodes):
            owner = pg.owner_of(np.array([node]))[0]
            assert owner in pg.replicas_of(node)

    def test_mirrors_are_stored_but_not_owned(self, pg):
        for part in range(4):
            mirrors = pg.mirror_nodes(part)
            stored = set(pg.stored_nodes(part).tolist())
            assert set(mirrors.tolist()) <= stored
            assert not np.any(pg.node_owner[mirrors] == part)

    def test_replication_factor_above_one(self, pg):
        assert pg.replication_factor() > 1.0

    def test_endpoints_stored_where_edge_lives(self, pg, community_g):
        """Vertex cut's defining invariant: both endpoints of every
        edge are replicated on the partition that owns the edge."""
        edges = community_g.edge_list()
        for part in range(4):
            local = edges[pg.edge_assignment == part]
            nodes = np.unique(local.ravel())
            assert pg.has_feature_locally(part, nodes).all()

    def test_isolated_node_fallback(self):
        g = Graph.from_edges(5, [[0, 1], [1, 2], [2, 3]])
        a = vertex_cut_partition(g, 2, rng=np.random.default_rng(0))
        pg = PartitionedGraph.build_edge_partitioned(g, a, 2)
        # Node 4 touches no edge: deterministically stored only at its
        # master, node_id % num_parts.
        assert pg.owner_of(np.array([4]))[0] == 4 % 2
        assert pg.replicas_of(4).tolist() == [4 % 2]

    def test_more_parts_than_edges_rejected(self):
        g = Graph.from_edges(3, [[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            vertex_cut_partition(g, 3, rng=np.random.default_rng(0))


class TestVertexCutTraining:
    @staticmethod
    def _config(backend):
        return TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                           batch_size=32, epochs=2, eval_every=2, seed=0,
                           backend=backend, num_workers=2, observe=False)

    def test_zero_feature_fetch_nonzero_replica_sync(self, small_split):
        outcome = run_framework("vertex_cut", small_split, 2,
                                self._config("serial"),
                                rng=np.random.default_rng(0))
        total = outcome.comm_total
        assert total.feature_bytes == 0
        assert total.structure_bytes == 0
        assert outcome.sync_stats["replica_sync_bytes"] > 0
        assert total.sync_bytes >= outcome.sync_stats["replica_sync_bytes"]

    def test_bit_identical_across_backends(self, small_split):
        runs = {
            backend: run_framework("vertex_cut", small_split, 2,
                                   self._config(backend),
                                   rng=np.random.default_rng(0))
            for backend in ("serial", "thread", "process")
        }
        base = runs["serial"]
        for backend in ("thread", "process"):
            other = runs[backend]
            assert other.test.auc == base.test.auc
            assert other.comm_total.sync_bytes == base.comm_total.sync_bytes
            assert (other.sync_stats["replica_sync_bytes"]
                    == base.sync_stats["replica_sync_bytes"])


class TestR109:
    RULES = None

    @classmethod
    def setup_class(cls):
        cls.RULES = [get_rule("R109")]

    def _lint(self, code, modpath="repro/core/other.py"):
        return lint_source(code, modpath=modpath, rules=self.RULES)

    def test_flags_private_dict_attribute(self):
        code = "fn = partition._STRATEGIES['metis']\n"
        assert [f.rule_id for f in self._lint(code)] == ["R109"]

    def test_flags_private_dict_name(self):
        code = "from repro.partition import _STRATEGIES\n"
        code += "fn = _STRATEGIES[name]\n"
        assert "R109" in [f.rule_id for f in self._lint(code)]

    def test_flags_strategy_string_dispatch(self):
        code = "if strategy == 'vertex_cut':\n    do_mirror()\n"
        assert [f.rule_id for f in self._lint(code)] == ["R109"]

    def test_flags_membership_dispatch(self):
        code = "ok = name in ('metis', 'ldg')\n"
        assert [f.rule_id for f in self._lint(code)] == ["R109"]

    def test_partition_package_exempt(self):
        code = "if strategy == 'metis':\n    pass\n"
        assert self._lint(code, modpath="repro/partition/__init__.py") == []

    def test_capability_dispatch_clean(self):
        code = ("p = get_partitioner(name)\n"
                "if p.edge_partitioned:\n    build_mirrors()\n")
        assert self._lint(code) == []

    def test_non_strategy_string_clean(self):
        code = "if mode == 'barrier':\n    pass\n"
        assert self._lint(code) == []

    def test_disable_comment(self):
        code = "if s == 'metis':  # lint: disable=R109\n    pass\n"
        assert lint_source(code, rules=self.RULES) == []

    def test_src_tree_is_clean(self):
        """The live source tree must not bypass its own registry."""
        from pathlib import Path

        from repro.lint import lint_paths

        src = Path(__file__).resolve().parents[1] / "src"
        findings = [f for f in lint_paths([src], select=["R109"])]
        assert findings == []
