"""Fixture corpus for the deep analyses (F201-F204).

Every analysis is exercised with at least one true positive and one
true negative over small self-contained "projects" (modpath → source
mappings fed straight to :func:`repro.lint.flow.analyze_sources`), so
the interprocedural machinery — call graph, worker cone, CFG path
queries, taint summaries — is pinned down by behavior, not structure.
"""

import textwrap

from repro.lint.flow import analyze_sources


def _dedent(mapping):
    return {path: textwrap.dedent(src) for path, src in mapping.items()}


def _lines(findings, rule_id):
    return sorted((f.path, f.line) for f in findings
                  if f.rule_id == rule_id)


# ----------------------------------------------------------------------
# F201 — RNG-seed taint
# ----------------------------------------------------------------------

F201_SOURCES = _dedent({
    "repro/flowfix/draws.py": '''\
    """Fixture: generator provenance."""
    import numpy as np


    def draw_unseeded():
        """TP: fresh OS entropy reaches a draw in the same function."""
        rng = np.random.default_rng()
        return rng.integers(10)


    def sample(rng, n):
        """Sink helper: draws from its parameter."""
        return rng.choice(n)


    def run_interproc():
        """TP: unseeded generator flows into a sink parameter."""
        gen = np.random.Generator(np.random.PCG64())
        return sample(gen, 5)


    def draw_seeded():
        """TN: literal seed."""
        rng = np.random.default_rng(17)
        return rng.integers(10)


    def draw_spawned():
        """TN: child of a seeded generator is seeded."""
        root = np.random.default_rng(17)
        child = root.spawn(1)[0]
        return child.integers(10)


    def draw_unknown(cfg):
        """TN: unresolvable provenance is trusted, never flagged."""
        rng = cfg.rng
        return rng.integers(10)
    ''',
})


def test_f201_flags_direct_and_interprocedural_unseeded_draws():
    """Both the local draw and the cross-function flow are caught."""
    findings = analyze_sources(F201_SOURCES, select=["F201"])
    assert _lines(findings, "F201") == [
        ("repro/flowfix/draws.py", 8),    # rng.integers in draw_unseeded
        ("repro/flowfix/draws.py", 19),   # sample(gen, 5) in run_interproc
    ]
    interproc = [f for f in findings if f.line == 19]
    assert "sample()" in interproc[0].message
    assert "rng" in interproc[0].message


def test_f201_trusts_seeded_spawned_and_unknown_generators():
    """Seeded roots, spawned children and opaque sources stay silent."""
    findings = analyze_sources(F201_SOURCES, select=["F201"])
    flagged = {line for _, line in _lines(findings, "F201")}
    # draw_seeded / draw_spawned / draw_unknown bodies are clean.
    assert not flagged & set(range(22, 41))


# ----------------------------------------------------------------------
# F202 — worker shared-state races
# ----------------------------------------------------------------------

F202_SOURCES = _dedent({
    "repro/flowfix/shared.py": '''\
    """Fixture: module-global shared state touched by workers."""
    import threading

    RESULTS = []
    _RESULTS_LOCK = threading.Lock()


    def work(item):
        """TP: worker-executed append to a module global."""
        RESULTS.append(item)
        return item


    def work_locked(item):
        """TN: the same write, under a lock."""
        with _RESULTS_LOCK:
            RESULTS.append(item)
        return item


    def not_a_worker(item):
        """TN: same write, but never shipped to a pool."""
        RESULTS.append(item)
        return item
    ''',
    "repro/flowfix/pool.py": '''\
    """Fixture: the driver that makes them workers."""
    from concurrent.futures import ThreadPoolExecutor

    from repro.flowfix.shared import work, work_locked


    def run_all(items):
        """Submit work items; only submitted functions are workers."""
        pool = ThreadPoolExecutor(2)
        futs = [pool.submit(work, item) for item in items]
        futs += [pool.submit(work_locked, item) for item in items]
        out = [f.result() for f in futs]
        pool.shutdown()
        return out
    ''',
})


def test_f202_flags_worker_write_to_module_global():
    """The submitted function's unguarded append is a race."""
    findings = analyze_sources(F202_SOURCES, select=["F202"])
    assert _lines(findings, "F202") == [("repro/flowfix/shared.py", 10)]
    (finding,) = findings
    assert "RESULTS" in finding.message
    assert "work()" in finding.message


def test_f202_accepts_locked_write_and_non_worker_code():
    """A lock guard, or not being submitted at all, silences F202."""
    findings = analyze_sources(F202_SOURCES, select=["F202"])
    flagged = {line for _, line in _lines(findings, "F202")}
    assert 17 not in flagged     # work_locked: guarded by _RESULTS_LOCK
    assert 23 not in flagged     # not_a_worker: outside the worker cone


def test_f202_process_spawn_counts_as_worker_root():
    """``Process(target=fn)`` makes ``fn`` worker-executed too."""
    sources = _dedent({
        "repro/flowfix/proc.py": '''\
        """Fixture: process-spawned worker."""
        from multiprocessing import Process

        SEEN = {}


        def child(key):
            """TP: forked worker writing a parent-module global."""
            SEEN[key] = True


        def launch(key):
            """Spawns the child process."""
            proc = Process(target=child, args=(key,))
            proc.start()
            return proc
        ''',
    })
    findings = analyze_sources(sources, select=["F202"])
    assert _lines(findings, "F202") == [("repro/flowfix/proc.py", 9)]


# ----------------------------------------------------------------------
# F203 — CommMeter completeness
# ----------------------------------------------------------------------

F203_SOURCES = _dedent({
    "repro/flowfix/store.py": '''\
    """Fixture: payload serving with and without accounting."""


    def fetch_rows(graph, nodes, meter):
        """TP: materializes features, returns them uncharged."""
        rows = graph.features[nodes]
        return rows


    def fetch_rows_charged(graph, nodes, meter):
        """TN: the canonical guarded charge dominates the return."""
        rows = graph.features[nodes]
        if meter is not None:
            meter.charge_features(rows.nbytes)
        return rows


    def fetch_delegated(store, nodes, meter):
        """TN: forwarding the meter delegates the charge."""
        return store.fetch_features(nodes, meter)


    def peek_no_meter(graph, nodes):
        """TN: no meter parameter — not a charging boundary."""
        return graph.features[nodes]
    ''',
})


def test_f203_flags_uncharged_payload_return():
    """A return reachable without any charge on the path is flagged."""
    findings = analyze_sources(F203_SOURCES, select=["F203"])
    assert _lines(findings, "F203") == [("repro/flowfix/store.py", 7)]
    assert "fetch_rows()" in findings[0].message


def test_f203_accepts_guarded_charge_and_delegation():
    """`if meter: charge` and meter-forwarding delegation both count."""
    findings = analyze_sources(F203_SOURCES, select=["F203"])
    flagged = {line for _, line in _lines(findings, "F203")}
    assert 15 not in flagged     # fetch_rows_charged's return
    assert 20 not in flagged     # fetch_delegated's return


def test_f203_early_return_on_one_branch_is_still_caught():
    """Charging one branch does not excuse the other."""
    sources = _dedent({
        "repro/flowfix/branchy.py": '''\
        """Fixture: partially charged store."""


        def fetch(graph, nodes, meter):
            """TP on the fast path, which skips the charge."""
            rows = graph.features[nodes]
            if nodes.size == 0:
                return rows
            meter.charge_features(rows.nbytes)
            return rows
        ''',
    })
    findings = analyze_sources(sources, select=["F203"])
    assert _lines(findings, "F203") == [("repro/flowfix/branchy.py", 8)]


# ----------------------------------------------------------------------
# F204 — worker-IO exception safety
# ----------------------------------------------------------------------

F204_SOURCES = _dedent({
    "repro/flowfix/io.py": '''\
    """Fixture: resource handling on the worker path."""


    def load(path):
        """TP: the empty-data return leaks the handle."""
        fh = open(path)
        data = fh.read()
        if not data:
            return None
        fh.close()
        return data


    def load_safe(path):
        """TN: the finally releases on every path, including raises."""
        fh = open(path)
        try:
            data = fh.read()
        finally:
            fh.close()
        return data


    def open_for_caller(path):
        """TN: returning the handle transfers ownership."""
        fh = open(path)
        return fh
    ''',
    "repro/flowfix/spawn.py": '''\
    """Fixture: threads that make the IO functions worker code."""
    from threading import Thread

    from repro.flowfix.io import load, load_safe, open_for_caller


    def start(path):
        """Spawn every fixture worker."""
        workers = [Thread(target=load, args=(path,)),
                   Thread(target=load_safe, args=(path,)),
                   Thread(target=open_for_caller, args=(path,))]
        for thread in workers:
            thread.start()
        return workers
    ''',
})


def test_f204_flags_leak_on_early_return_path():
    """A path to the exit that skips the release is reported."""
    findings = analyze_sources(F204_SOURCES, select=["F204"])
    assert _lines(findings, "F204") == [("repro/flowfix/io.py", 6)]
    assert "'fh'" in findings[0].message


def test_f204_accepts_finally_release_and_ownership_transfer():
    """try/finally covers all paths; returning the handle escapes it."""
    findings = analyze_sources(F204_SOURCES, select=["F204"])
    flagged = {line for _, line in _lines(findings, "F204")}
    assert 16 not in flagged     # load_safe's open
    assert 25 not in flagged     # open_for_caller's open


def test_f204_scopes_to_worker_and_distributed_code():
    """The same leak outside the worker/distributed scope is ignored."""
    leaky = '''\
    """Fixture: a leak nobody ships to a worker."""


    def load(path):
        """Leaks, but is not worker-reachable."""
        fh = open(path)
        data = fh.read()
        if not data:
            return None
        fh.close()
        return data
    '''
    silent = analyze_sources(
        _dedent({"repro/flowfix/solo.py": leaky}), select=["F204"])
    assert silent == []
    # The identical source under repro/distributed/ is in scope.
    flagged = analyze_sources(
        _dedent({"repro/distributed/solo.py": leaky}), select=["F204"])
    assert _lines(flagged, "F204") == [("repro/distributed/solo.py", 6)]


# ----------------------------------------------------------------------
# Cross-cutting behavior
# ----------------------------------------------------------------------


def test_deep_findings_honor_statement_suppressions():
    """``# lint: disable=F202`` on the writing statement silences it."""
    sources = dict(F202_SOURCES)
    sources["repro/flowfix/shared.py"] = sources[
        "repro/flowfix/shared.py"].replace(
            "    RESULTS.append(item)\n    return item\n\n\ndef work_locked",
            "    RESULTS.append(item)  # lint: disable=F202\n"
            "    return item\n\n\ndef work_locked", 1)
    findings = analyze_sources(sources, select=["F202"])
    assert _lines(findings, "F202") == []


def test_deep_output_is_deterministic_and_order_independent():
    """Same project, any modpath insertion order → identical findings."""
    merged = {}
    for part in (F201_SOURCES, F202_SOURCES, F203_SOURCES, F204_SOURCES):
        merged.update(part)
    forward = analyze_sources(merged)
    backward = analyze_sources(dict(reversed(list(merged.items()))))
    assert forward == backward
    keys = [(f.path, f.line, f.col, f.rule_id, f.message) for f in forward]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


def test_unknown_deep_analysis_id_raises():
    """Selecting an unknown F-id is a hard error, not silence."""
    import pytest

    with pytest.raises(KeyError):
        analyze_sources(F203_SOURCES, select=["F999"])
