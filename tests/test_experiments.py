"""Experiment runners: schema and basic invariants at smoke scale."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    format_rows,
    run_fig3,
    run_fig4,
    run_fig6,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig14,
    run_table2,
    run_table3,
)


@pytest.fixture(scope="module")
def smoke():
    return ExperimentScale.smoke()


class TestExperimentScale:
    def test_quick_vs_paper(self):
        quick = ExperimentScale.quick()
        paper = ExperimentScale.paper()
        assert paper.dataset_scale == 1.0
        assert paper.hidden_dim == 256
        assert paper.fanouts == (25, 10, 5)
        assert paper.batch_size == 256
        assert quick.dataset_scale < 1.0

    def test_train_config_overrides(self, smoke):
        cfg = smoke.train_config(gnn_type="gcn", epochs=1)
        assert cfg.gnn_type == "gcn"
        assert cfg.epochs == 1
        assert cfg.hidden_dim == smoke.hidden_dim

    def test_load_split(self, smoke):
        split = smoke.load_split("cora")
        assert split.train_pos.shape[0] > 0

    def test_format_rows(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}]
        text = format_rows(rows, ["a", "b"])
        assert "0.5000" in text and "22" in text


class TestRunners:
    def test_fig3_rows(self, smoke):
        rows = run_fig3(datasets=("cora",), p_values=(2,), scale=smoke)
        assert {r["framework"] for r in rows} == \
            {"Centralized", "PSGD-PA", "LLCG", "RandomTMA", "SuperTMA"}
        assert all(0 <= r["hits"] <= 1 for r in rows)

    def test_fig4_rows(self, smoke):
        rows = run_fig4(datasets=("cora",), p_values=(2,), scale=smoke)
        plus = [r for r in rows if r["framework"].endswith("+")]
        assert all(r["comm_gb_per_epoch"] > 0 for r in plus)
        central = [r for r in rows if r["framework"] == "Centralized"]
        assert central[0]["comm_gb_per_epoch"] == 0.0

    def test_fig6_sparsified_loses_edges(self, smoke):
        rows = run_fig6(datasets=("cora",), scale=smoke)
        sparse = [r for r in rows if r["variant"] == "w/ sparsification"][0]
        dense = [r for r in rows if r["variant"] == "w/o sparsification"][0]
        assert sparse["edges_retained"] < 0.3
        assert dense["edges_retained"] == 1.0

    def test_table2_timings_positive(self, smoke):
        rows = run_table2(datasets=("cora",), p_values=(2, 4), scale=smoke)
        row = rows[0]
        assert row["sparsify_s_p2"] > 0
        assert row["sparsify_s_p4"] > 0

    def test_fig8_savings(self, smoke):
        rows = run_fig8(datasets=("cora",), p_values=(2,),
                        gnn_types=("sage",), scale=smoke,
                        baselines=("psgd_pa_plus",))
        assert all(0 < r["saving"] <= 1 for r in rows)

    def test_fig9_savings(self, smoke):
        rows = run_fig9(datasets=("cora",), p_values=(2,), scale=smoke)
        for r in rows:
            assert r["splpg_gb"] < r["splpg_plus_gb"]
            assert 0 < r["saving"] <= 1

    def test_fig10_schema(self, smoke):
        rows = run_fig10(datasets=("cora",), p_values=(2,), scale=smoke,
                         baselines=("psgd_pa",))
        assert {"splpg_hits", "baseline_hits", "improvement"} <= \
            set(rows[0])

    def test_fig11_schema(self, smoke):
        rows = run_fig11(datasets=("cora",), p_values=(2,),
                         gnn_types=("sage",), scale=smoke)
        assert {"centralized_hits", "splpg_hits", "gap"} <= set(rows[0])

    def test_fig12_ladder(self, smoke):
        rows = run_fig12(datasets=("cora",), p=2, scale=smoke)
        assert [r["variant"] for r in rows] == \
            ["SpLPG--", "SpLPG-", "SpLPG", "SpLPG+"]

    def test_fig13_comm_decreases_with_batch(self, smoke):
        rows = run_fig13(dataset="cora", batch_sizes=(32, 256), p=2,
                         scale=smoke)
        assert rows[0]["comm_gb_per_epoch"] > rows[1]["comm_gb_per_epoch"]

    def test_table3_more_alpha_less_saving(self, smoke):
        rows = run_table3(dataset="cora", alphas=(0.05, 0.3),
                          p_values=(2,), scale=smoke)
        by_alpha = {r["alpha"]: r for r in rows}
        assert by_alpha[0.05]["comm_saving"] > by_alpha[0.3]["comm_saving"]

    def test_fig14_schema(self, smoke):
        rows = run_fig14(datasets=("cora",), p=2, scale=smoke,
                         gnn_types=("sage",),
                         frameworks=("centralized", "splpg"))
        assert len(rows) == 2
        for r in rows:
            assert isinstance(r["val_curve"], list)
            assert len(r["val_curve"]) >= 1


class TestRunFrameworkMean:
    def test_averages_over_seeds(self, smoke):
        from repro.experiments import run_framework_mean
        split = smoke.load_split("cora")
        config = smoke.train_config()
        result = run_framework_mean("psgd_pa", split, 2, config,
                                    seeds=(0, 1))
        assert len(result.runs) == 2
        manual = np.mean([r.test.hits for r in result.runs])
        assert result.hits == pytest.approx(manual)
        assert result.hits_std >= 0.0

    def test_seeds_change_outcomes(self, smoke):
        from repro.experiments import run_framework_mean
        split = smoke.load_split("cora")
        config = smoke.train_config()
        result = run_framework_mean("psgd_pa", split, 2, config,
                                    seeds=(0, 1))
        a, b = result.runs
        sa, sb = a.history[0].mean_loss, b.history[0].mean_loss
        assert sa != sb  # different seeds → different trajectories

    def test_val_curve_from_first_run(self, smoke):
        from repro.experiments import run_framework_mean
        split = smoke.load_split("cora")
        config = smoke.train_config()
        result = run_framework_mean("centralized", split, 1, config,
                                    seeds=(0,))
        assert result.val_curve == result.runs[0].val_curve()
