"""Fixture-based tests for the static lint rules.

Each rule gets at least one true positive it catches and one
suppressed/clean case it passes, per the subsystem's acceptance
criteria.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import all_rules, get_rule, lint_source
from repro.lint.engine import LintEngine, _module_path
from repro.lint.reporters import render_json, render_text

SRC = Path(__file__).resolve().parents[1] / "src"


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestEngine:
    def test_module_path_normalization(self):
        assert _module_path(
            Path("/x/y/src/repro/distributed/views.py")
        ) == "repro/distributed/views.py"
        assert _module_path(Path("standalone.py")) == "standalone.py"

    def test_syntax_error_is_reported_not_raised(self):
        findings = lint_source("def broken(:\n")
        assert rule_ids(findings) == ["E999"]

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            LintEngine().select(["R999"])

    def test_registry_catalogue(self):
        ids = {r.rule_id for r in all_rules()}
        assert {"R001", "R002", "R003", "R101", "R102", "R103"} <= ids
        assert get_rule("R001").name == "unseeded-rng"

    def test_suppression_in_string_literal_is_ignored(self):
        code = 's = "# lint: disable=R001"\nrng = np.random.default_rng()\n'
        assert rule_ids(lint_source(code)) == ["R001"]

    def test_bare_disable_suppresses_all_rules(self):
        code = "np.random.seed(0)  # lint: disable\n"
        assert lint_source(code) == []


class TestR001UnseededRng:
    def test_unseeded_default_rng_flagged(self):
        findings = lint_source("rng = np.random.default_rng()\n")
        assert rule_ids(findings) == ["R001"]

    def test_legacy_global_calls_flagged(self):
        code = "np.random.seed(3)\nx = np.random.rand(4)\n"
        assert rule_ids(lint_source(code)) == ["R001", "R001"]

    def test_seeded_and_threaded_rng_clean(self):
        code = ("rng = np.random.default_rng(17)\n"
                "gen = np.random.Generator(np.random.PCG64(5))\n"
                "y = rng.random(3)\n")
        assert lint_source(code) == []

    def test_suppressed(self):
        code = "rng = np.random.default_rng()  # lint: disable=R001\n"
        assert lint_source(code) == []

    def test_bare_imported_default_rng(self):
        code = ("from numpy.random import default_rng\n"
                "rng = default_rng()\n")
        assert rule_ids(lint_source(code)) == ["R001"]


class TestR002RawGraphAccess:
    WORKER_PATH = "repro/distributed/evil_worker.py"

    def test_indptr_access_flagged_in_distributed(self):
        code = "deg = graph.indptr[nodes + 1] - graph.indptr[nodes]\n"
        findings = lint_source(code, modpath=self.WORKER_PATH)
        assert rule_ids(findings) == ["R002", "R002"]

    def test_raw_source_construction_flagged_in_sampling(self):
        code = "src = GraphNeighborSource(graph)\n"
        findings = lint_source(code, modpath="repro/sampling/rogue.py")
        assert rule_ids(findings) == ["R002"]

    def test_master_feature_read_flagged(self):
        code = "feats = self.partitioned.full.features[nodes]\n"
        findings = lint_source(code, modpath=self.WORKER_PATH)
        assert rule_ids(findings) == ["R002"]

    def test_same_code_outside_scope_clean(self):
        code = "deg = graph.indptr[nodes]\n"
        assert lint_source(code, modpath="repro/graph/analysis.py") == []

    def test_store_module_exempt(self):
        code = "deg = graph.indptr[nodes]\n"
        assert lint_source(code,
                           modpath="repro/distributed/store.py") == []

    def test_suppressed(self):
        code = ("src = GraphNeighborSource(local)"
                "  # lint: disable=R002 -- local partition\n")
        assert lint_source(code, modpath=self.WORKER_PATH) == []


class TestR003InplaceTensorMutation:
    def test_subscript_assignment_flagged(self):
        assert rule_ids(lint_source("t.data[0] = 5.0\n")) == ["R003"]

    def test_augmented_assignment_flagged(self):
        code = "t.data += delta\nt.data[ix] *= 2\n"
        assert rule_ids(lint_source(code)) == ["R003", "R003"]

    def test_mutating_numpy_ops_flagged(self):
        code = ("np.add.at(t.data, idx, vals)\n"
                "np.copyto(t.data, other)\n"
                "t.data.fill(0.0)\n")
        assert rule_ids(lint_source(code)) == ["R003", "R003", "R003"]

    def test_reads_and_rebinding_clean(self):
        code = ("x = t.data[idx]\n"           # read
                "t.data = fresh_array\n"      # rebind is the sanctioned way
                "y = t.data.sum()\n")
        assert lint_source(code) == []

    def test_suppressed(self):
        code = "p.data -= lr * g  # lint: disable=R003\n"
        assert lint_source(code) == []


class TestHygieneRules:
    def test_r101_mutable_default_flagged(self):
        code = ("def f(x, acc=[], table={}):\n"
                "    \"\"\"doc\"\"\"\n    return acc\n")
        assert rule_ids(lint_source(code)) == ["R101", "R101"]

    def test_r101_none_default_clean(self):
        code = ("def f(x, acc=None):\n"
                "    \"\"\"doc\"\"\"\n    acc = acc or []\n    return acc\n")
        assert lint_source(code) == []

    def test_r102_wall_clock_flagged_perf_counter_allowed(self):
        code = "t0 = time.time()\nt1 = time.perf_counter()\n"
        assert rule_ids(lint_source(code)) == ["R102"]

    def test_r103_stdlib_random_flagged(self):
        code = "import random\nfrom random import choice\n"
        assert rule_ids(lint_source(code)) == ["R103", "R103"]


class TestDocsRules:
    R104 = [get_rule("R104")]

    def test_r104_missing_docstrings_flagged(self):
        code = ("def api():\n    pass\n\n"
                "class Thing:\n"
                "    \"\"\"doc\"\"\"\n"
                "    def method(self):\n        pass\n")
        findings = lint_source(code, rules=self.R104)
        assert rule_ids(findings) == ["R104", "R104"]
        assert "'api'" in findings[0].message
        assert "'method'" in findings[1].message

    def test_r104_documented_clean(self):
        code = ("def api():\n    \"\"\"doc\"\"\"\n\n"
                "class Thing:\n"
                "    \"\"\"doc\"\"\"\n"
                "    def method(self):\n"
                "        \"\"\"doc\"\"\"\n")
        assert lint_source(code, rules=self.R104) == []

    def test_r104_private_and_nested_exempt(self):
        code = ("def _helper():\n    pass\n\n"
                "class _Private:\n"
                "    def method(self):\n        pass\n\n"
                "def api():\n"
                "    \"\"\"doc\"\"\"\n"
                "    def inner():\n        pass\n")
        assert lint_source(code, rules=self.R104) == []

    def test_r104_undocumented_class_flagged_once(self):
        code = "class Bare:\n    pass\n"
        findings = lint_source(code, rules=self.R104)
        assert rule_ids(findings) == ["R104"]
        assert "class 'Bare'" in findings[0].message

    def test_r104_suppressed(self):
        code = "def api():  # lint: disable=R104\n    pass\n"
        assert lint_source(code, rules=self.R104) == []


class TestReporters:
    def test_text_and_json_round_trip(self):
        findings = lint_source("rng = np.random.default_rng()\n",
                               modpath="repro/x.py")
        text = render_text(findings)
        assert "repro/x.py:1:" in text and "R001" in text
        payload = json.loads(render_json(findings))
        assert payload["total"] == 1
        assert payload["counts"] == {"R001": 1}
        assert payload["findings"][0]["rule"] == "R001"

    def test_clean_report(self):
        assert "clean" in render_text([])


class TestCli:
    def test_cli_clean_tree_exits_zero(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(SRC), "--format",
             "json"],
            capture_output=True, text=True,
            env=_env())
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert json.loads(proc.stdout)["total"] == 0

    def test_cli_findings_exit_one(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("rng = np.random.default_rng()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad)],
            capture_output=True, text=True,
            env=_env())
        assert proc.returncode == 1
        assert "R001" in proc.stdout

    def test_cli_select_and_list_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("rng = np.random.default_rng()\nimport random\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(bad),
             "--select", "R103"],
            capture_output=True, text=True,
            env=_env())
        assert proc.returncode == 1
        assert "R103" in proc.stdout and "R001" not in proc.stdout
        listing = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True, text=True,
            env=_env())
        assert listing.returncode == 0
        assert "R002" in listing.stdout

    def test_cli_missing_path_exits_two(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "definitely/not/here"],
            capture_output=True, text=True,
            env=_env())
        assert proc.returncode == 2


class TestR111UnmanagedGraphMutation:
    """R111: graph state mutates only through the stream delta path."""

    def test_subscript_assignment_to_features_flagged(self):
        code = "g.features[3] = 1.0\n"
        assert rule_ids(lint_source(code)) == ["R111"]

    def test_augassign_and_mutating_calls_flagged(self):
        code = ("g.features[idx] += drift\n"
                "np.add.at(g.indices, idx, 1)\n"
                "g.indptr.sort()\n")
        assert rule_ids(lint_source(code)) == ["R111", "R111", "R111"]

    def test_weights_and_feature_mask_covered(self):
        code = ("g.weights[e] = 0.0\n"
                "part._feature_mask[n] = True\n")
        assert rule_ids(lint_source(code)) == ["R111", "R111"]

    def test_rebinding_is_clean(self):
        code = ("g.features = np.concatenate([g.features, rows])\n"
                "g.indices = np.sort(g.indices)\n")
        assert lint_source(code) == []

    def test_managed_mutation_modules_exempt(self):
        code = "self.features[event.u] += np.float32(event.scale)\n"
        assert lint_source(code,
                           modpath="repro/stream/mutable.py") == []
        assert lint_source(code,
                           modpath="repro/stream/shards.py") == []
        assert rule_ids(lint_source(
            code, modpath="repro/graph/rogue.py")) == ["R111"]

    def test_unrelated_attrs_and_local_arrays_clean(self):
        code = ("table[lo:hi] = patch[lo:hi]\n"
                "self.counts[k] += 1\n"
                "g.metadata[3] = 'x'\n")
        assert lint_source(code) == []

    def test_registered_in_catalogue(self):
        assert get_rule("R111").name == "unmanaged-graph-mutation"
