"""Framework specs and the SpLPG public API."""

import numpy as np
import pytest

from repro import SpLPG, TrainConfig, run_framework
from repro.core import FRAMEWORK_NAMES, FRAMEWORKS, PAPER_LABELS, FrameworkSpec
from repro.core.llcg import GlobalCorrection
from repro.nn import build_model


class TestFrameworkSpecs:
    def test_all_paper_frameworks_present(self):
        expected = {"psgd_pa", "psgd_pa_plus", "random_tma",
                    "random_tma_plus", "super_tma", "super_tma_plus",
                    "llcg", "splpg", "splpg_plus", "splpg_minus",
                    "splpg_minus_minus"}
        # The zoo has grown beyond the paper (vertex_cut competitor);
        # the paper's own frameworks must all still be present.
        assert expected <= set(FRAMEWORK_NAMES)
        assert "vertex_cut" in FRAMEWORK_NAMES

    def test_labels_cover_everything(self):
        for name in FRAMEWORK_NAMES:
            assert name in PAPER_LABELS
        assert "centralized" in PAPER_LABELS

    def test_splpg_spec(self):
        spec = FRAMEWORKS["splpg"]
        assert spec.mirror and spec.remote == "sparsified"
        assert spec.global_negatives

    def test_vanilla_specs_pure_local(self):
        for name in ("psgd_pa", "random_tma", "super_tma",
                     "splpg_minus", "splpg_minus_minus"):
            spec = FRAMEWORKS[name]
            assert spec.remote == "none"
            assert not spec.global_negatives

    def test_plus_variants_full_sharing(self):
        for name in ("psgd_pa_plus", "random_tma_plus", "super_tma_plus",
                     "splpg_plus"):
            spec = FRAMEWORKS[name]
            assert spec.remote == "full"
            assert spec.global_negatives

    def test_splpg_minus_ladder(self):
        assert FRAMEWORKS["splpg_minus"].mirror
        assert not FRAMEWORKS["splpg_minus_minus"].mirror

    def test_invalid_remote_mode(self):
        with pytest.raises(ValueError):
            FrameworkSpec("bad", remote="partial")

    def test_global_negatives_need_remote(self):
        with pytest.raises(ValueError):
            FrameworkSpec("bad", remote="none", global_negatives=True)

    def test_unknown_framework_name(self, small_split):
        cfg = TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                          epochs=1)
        with pytest.raises(ValueError):
            run_framework("distdgl", small_split, 2, cfg)


@pytest.fixture
def smoke_config():
    return TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                       fanouts=(5, 3), batch_size=64, epochs=2, hits_k=20,
                       eval_every=2, seed=3)


class TestRunFramework:
    @pytest.mark.parametrize("name", sorted(FRAMEWORK_NAMES))
    def test_every_framework_runs(self, name, small_split, smoke_config):
        result = run_framework(name, small_split, num_parts=2,
                               config=smoke_config,
                               rng=np.random.default_rng(0))
        assert result.framework == name
        assert np.isfinite(result.test.hits)

    def test_centralized_runs(self, small_split, smoke_config):
        result = run_framework("centralized", small_split, 1, smoke_config)
        assert result.framework == "centralized"


class TestLLCG:
    def test_correction_changes_weights(self, small_split, smoke_config):
        models = [build_model("sage", small_split.train_graph.feature_dim,
                              16, num_layers=2, seed=0) for _ in range(2)]
        before = models[0].state_dict()
        hook = GlobalCorrection(small_split, smoke_config,
                                rng=np.random.default_rng(1))
        hook(models)
        after = models[0].state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_correction_rebroadcasts(self, small_split, smoke_config):
        models = [build_model("sage", small_split.train_graph.feature_dim,
                              16, num_layers=2, seed=s) for s in (0, 1)]
        hook = GlobalCorrection(small_split, smoke_config,
                                rng=np.random.default_rng(1))
        hook(models)
        a, b = models[0].state_dict(), models[1].state_dict()
        for name in a:
            assert np.allclose(a[name], b[name])


class TestSpLPGClass:
    def test_prepare_then_fit(self, featured_graph):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=2,
                          hits_k=20, eval_every=2, seed=0)
        framework = SpLPG(num_parts=2, alpha=0.2, config=cfg, seed=0)
        prepared = framework.prepare(featured_graph)
        assert prepared.sparsify_seconds >= 0
        assert len(prepared.sparsified.graphs) == 2

    def test_fit_on_raw_graph(self, featured_graph):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=2,
                          hits_k=20, eval_every=2, seed=0)
        framework = SpLPG(num_parts=2, alpha=0.2, config=cfg, seed=0)
        result = framework.fit(featured_graph)
        assert result is framework.result
        assert framework.communication_gb_per_epoch >= 0

    def test_fit_on_split(self, small_split):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=2,
                          hits_k=20, eval_every=2, seed=0)
        framework = SpLPG(num_parts=2, alpha=0.2, config=cfg, seed=0)
        result = framework.fit(small_split)
        assert result.num_workers == 2

    def test_score_and_predict(self, small_split):
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=2,
                          hits_k=20, eval_every=2, seed=0)
        framework = SpLPG(num_parts=2, alpha=0.2, config=cfg, seed=0)
        framework.fit(small_split)
        pairs = small_split.test_pos[:5]
        scores = framework.score(pairs)
        preds = framework.predict(pairs)
        assert scores.shape == (5,)
        assert preds.dtype == bool

    def test_score_before_fit_rejected(self):
        framework = SpLPG(num_parts=2)
        with pytest.raises(RuntimeError):
            framework.score(np.array([[0, 1]]))

    def test_invalid_constructor_args(self):
        with pytest.raises(ValueError):
            SpLPG(num_parts=0)
        with pytest.raises(ValueError):
            SpLPG(alpha=0.0)

    def test_communication_before_fit_rejected(self):
        framework = SpLPG(num_parts=2)
        with pytest.raises(RuntimeError):
            _ = framework.communication_gb_per_epoch


class TestLLCGCorrectionFires:
    def test_llcg_differs_from_psgd_pa_under_grad_sync(self, small_split,
                                                       smoke_config):
        """The global correction must actually run: LLCG and PSGD-PA
        share everything else, so their final weights must differ."""
        import numpy as np
        a = run_framework("psgd_pa", small_split, 2, smoke_config,
                          rng=np.random.default_rng(0))
        b = run_framework("llcg", small_split, 2, smoke_config,
                          rng=np.random.default_rng(0))
        assert a.history[-1].mean_loss == b.history[-1].mean_loss \
            or True  # same local trajectory is fine...
        # ...but the evaluated (corrected) model must differ:
        assert a.test.auc != b.test.auc
