"""Extension features: alternative sparsifiers, feature cache, GIN,
extra metrics, CLI."""

import numpy as np
import pytest

from repro.distributed import CommMeter, RemoteGraphStore, WorkerGraphView
from repro.eval import mean_reciprocal_rank, precision_at_k
from repro.graph import Graph, synthetic_lp_graph
from repro.nn import GINConv, Tensor, build_model
from repro.partition import partition_graph
from repro.sparsify import (
    SPARSIFIER_KINDS,
    exact_er_sparsify,
    sparsify_by_kind,
    sparsify_partitions,
    uniform_sparsify,
)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(2)
    return synthetic_lp_graph(num_nodes=150, target_edges=600,
                              feature_dim=8, num_communities=4, rng=rng)


class TestAlternativeSparsifiers:
    def test_uniform_keeps_nodes(self, graph, rng):
        sparse = uniform_sparsify(graph, 100, rng=rng)
        assert sparse.num_nodes == graph.num_nodes
        assert 0 < sparse.num_edges <= 100

    def test_uniform_weights_flat_in_expectation(self, graph):
        """Uniform sampling weight = multiplicity * |E| / n_samples."""
        sparse = uniform_sparsify(graph, 50,
                                  rng=np.random.default_rng(0))
        weights = sparse.edge_weight_list()
        base = graph.num_edges / 50
        # every weight is an integer multiple of |E|/n
        ratios = weights / base
        assert np.allclose(ratios, np.round(ratios))

    def test_exact_er_subset(self, graph, rng):
        sparse = exact_er_sparsify(graph, 120, rng=rng)
        orig = set(map(tuple, graph.edge_list().tolist()))
        assert all(tuple(e) in orig for e in sparse.edge_list().tolist())

    def test_exact_er_prefers_bridges(self, rng):
        """A bridge edge (resistance 1) must out-sample clique edges."""
        # two 5-cliques joined by one bridge
        edges = []
        for base in (0, 5):
            edges += [[base + i, base + j]
                      for i in range(5) for j in range(i + 1, 5)]
        edges.append([0, 5])
        g = Graph.from_edges(10, edges)
        counts = 0
        trials = 40
        for seed in range(trials):
            sparse = exact_er_sparsify(g, 4,
                                       rng=np.random.default_rng(seed))
            if sparse.has_edge(0, 5):
                counts += 1
        # bridge r=1 vs clique-edge r~0.33; expect it kept far more
        # often than a uniform 4/21 draw would.
        assert counts / trials > 0.5

    def test_dispatch(self, graph, rng):
        for kind in SPARSIFIER_KINDS:
            sparse = sparsify_by_kind(kind, graph, 60, rng=rng)
            assert sparse.num_nodes == graph.num_nodes

    def test_dispatch_unknown(self, graph, rng):
        with pytest.raises(ValueError):
            sparsify_by_kind("spectral", graph, 10, rng=rng)

    def test_empty_graph_handled(self, rng):
        g = Graph.empty(4)
        assert uniform_sparsify(g, 5, rng=rng).num_edges == 0
        assert exact_er_sparsify(g, 5, rng=rng).num_edges == 0

    def test_partition_sparsifier_kind(self, graph, rng):
        pg = partition_graph(graph, 2, "metis", rng=rng, mirror=True)
        result = sparsify_partitions(pg, alpha=0.3, rng=rng,
                                     kind="uniform")
        assert result.kind == "uniform"
        assert len(result.graphs) == 2


class TestFeatureCache:
    def test_second_fetch_free(self, graph):
        pg = partition_graph(graph, 2, "metis",
                             rng=np.random.default_rng(1), mirror=True)
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=meter, cache_remote_features=True)
        foreign = pg.owned_nodes(1)
        foreign = foreign[~pg.has_feature_locally(0, foreign)][:4]
        view.fetch_features(foreign)
        first = meter.current.feature_bytes
        assert first > 0
        view.fetch_features(foreign)
        assert meter.current.feature_bytes == first  # cached, no charge

    def test_clear_resets(self, graph):
        pg = partition_graph(graph, 2, "metis",
                             rng=np.random.default_rng(1), mirror=True)
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=meter, cache_remote_features=True)
        foreign = pg.owned_nodes(1)
        foreign = foreign[~pg.has_feature_locally(0, foreign)][:4]
        view.fetch_features(foreign)
        first = meter.current.feature_bytes
        view.clear_feature_cache()
        view.fetch_features(foreign)
        assert meter.current.feature_bytes == 2 * first

    def test_without_cache_charged_every_time(self, graph):
        pg = partition_graph(graph, 2, "metis",
                             rng=np.random.default_rng(1), mirror=True)
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(graph),
                               meter=meter, cache_remote_features=False)
        foreign = pg.owned_nodes(1)
        foreign = foreign[~pg.has_feature_locally(0, foreign)][:4]
        view.fetch_features(foreign)
        view.fetch_features(foreign)
        per_fetch = 4 * graph.feature_dim * 4
        assert meter.current.feature_bytes == 2 * per_fetch

    def test_values_identical_with_cache(self, graph):
        pg = partition_graph(graph, 2, "metis",
                             rng=np.random.default_rng(1), mirror=True)
        remote = RemoteGraphStore(graph)
        cached = WorkerGraphView(pg, 0, remote=remote, meter=CommMeter(),
                                 cache_remote_features=True)
        plain = WorkerGraphView(pg, 0, remote=remote, meter=CommMeter())
        nodes = np.arange(10)
        assert np.allclose(cached.fetch_features(nodes),
                           plain.fetch_features(nodes))


class TestGIN:
    def test_forward_shape(self, rng):
        from repro.sampling import Block
        block = Block(src_nodes=np.arange(5), num_dst=2,
                      edge_src=np.array([2, 3, 4]),
                      edge_dst=np.array([0, 0, 1]),
                      edge_weight=np.ones(3))
        conv = GINConv(4, 6, rng=rng)
        out = conv(block, Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (2, 6)

    def test_eps_is_learned(self, rng):
        from repro.sampling import Block
        block = Block(src_nodes=np.arange(3), num_dst=1,
                      edge_src=np.array([1, 2]),
                      edge_dst=np.array([0, 0]),
                      edge_weight=np.ones(2))
        conv = GINConv(2, 2, rng=rng)
        h = Tensor(rng.standard_normal((3, 2)), requires_grad=True)
        conv(block, h).sum().backward()
        assert conv.eps.grad is not None

    def test_build_model_gin(self):
        model = build_model("gin", 8, 4, num_layers=2, seed=0)
        assert model.encoder.gnn_type == "gin"


class TestExtraMetrics:
    def test_mrr_perfect(self):
        assert mean_reciprocal_rank(np.array([5.0]),
                                    np.array([1.0, 2.0])) == 1.0

    def test_mrr_rank(self):
        # one negative above the positive -> rr = 1/2
        assert mean_reciprocal_rank(np.array([1.5]),
                                    np.array([2.0, 1.0])) == 0.5

    def test_mrr_ties_count_against(self):
        assert mean_reciprocal_rank(np.array([1.0]),
                                    np.array([1.0])) == 0.5

    def test_mrr_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_reciprocal_rank(np.array([]), np.array([1.0]))

    def test_precision_at_k(self):
        pos = np.array([3.0, 2.5])
        neg = np.array([1.0, 2.0, 0.5])
        assert precision_at_k(pos, neg, k=2) == 1.0
        assert precision_at_k(pos, neg, k=4) == pytest.approx(0.5)

    def test_precision_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(np.array([1.0]), np.array([0.0]), k=0)


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig99"]) == 2

    def test_runs_fig13_smoke(self, capsys):
        from repro.experiments.__main__ import main
        code = main(["fig13", "--scale", "smoke",
                     "--batch-sizes", "64", "128", "--p", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch_size" in out


class TestTreePlusER:
    def test_preserves_connectivity(self, graph):
        from repro.graph import giant_component_fraction
        from repro.sparsify import tree_plus_er_sparsify
        rng = np.random.default_rng(0)
        # aggressive budget: bare ER sampling would likely disconnect
        sparse = tree_plus_er_sparsify(graph, graph.num_nodes + 10,
                                       rng=rng)
        assert giant_component_fraction(sparse) == pytest.approx(
            giant_component_fraction(graph))

    def test_edges_subset(self, graph, rng):
        from repro.sparsify import tree_plus_er_sparsify
        sparse = tree_plus_er_sparsify(graph, 200, rng=rng)
        orig = set(map(tuple, graph.edge_list().tolist()))
        assert all(tuple(e) in orig for e in sparse.edge_list().tolist())

    def test_small_budget_still_connected(self, graph, rng):
        from repro.graph import connected_components
        from repro.sparsify import tree_plus_er_sparsify
        import numpy as _np
        sparse = tree_plus_er_sparsify(graph, 1, rng=rng)
        # even with budget 1 the forest is kept
        orig_comp = _np.unique(connected_components(graph)).size
        new_comp = _np.unique(connected_components(sparse)).size
        assert new_comp == orig_comp

    def test_registered_kind(self, graph, rng):
        from repro.sparsify import sparsify_by_kind
        sparse = sparsify_by_kind("tree_er", graph, 100, rng=rng)
        assert sparse.num_nodes == graph.num_nodes

    def test_empty_graph(self, rng):
        from repro.graph import Graph
        from repro.sparsify import tree_plus_er_sparsify
        assert tree_plus_er_sparsify(Graph.empty(3), 5,
                                     rng=rng).num_edges == 0

    def test_splpg_runs_with_tree_er(self, rng):
        from repro import TrainConfig, run_framework, split_edges
        from repro.graph import synthetic_lp_graph
        g = synthetic_lp_graph(150, 600, feature_dim=8,
                               num_communities=4,
                               rng=np.random.default_rng(1))
        split = split_edges(g, rng=np.random.default_rng(2))
        cfg = TrainConfig(gnn_type="sage", hidden_dim=12, num_layers=2,
                          fanouts=(4, 3), batch_size=64, epochs=1,
                          hits_k=10, seed=0)
        result = run_framework("splpg", split, 2, cfg,
                               rng=np.random.default_rng(3),
                               sparsifier_kind="tree_er")
        assert np.isfinite(result.test.auc)
