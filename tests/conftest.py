"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph, load_dataset, split_edges, synthetic_lp_graph


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def path_graph():
    """0 - 1 - 2 - 3 (path on 4 nodes)."""
    return Graph.from_edges(4, [[0, 1], [1, 2], [2, 3]])


@pytest.fixture
def cycle_graph():
    """5-cycle."""
    return Graph.from_edges(5, [[0, 1], [1, 2], [2, 3], [3, 4], [4, 0]])


@pytest.fixture
def triangle_graph():
    return Graph.from_edges(3, [[0, 1], [1, 2], [0, 2]])


@pytest.fixture
def star_graph():
    """Hub 0 with leaves 1..4."""
    return Graph.from_edges(5, [[0, i] for i in range(1, 5)])


@pytest.fixture
def featured_graph(rng):
    """Small community graph with features, for training tests."""
    return synthetic_lp_graph(num_nodes=120, target_edges=420,
                              feature_dim=16, num_communities=4, rng=rng)


@pytest.fixture
def small_split(featured_graph, rng):
    return split_edges(featured_graph, rng=rng)


@pytest.fixture(scope="session")
def cora_tiny():
    """Session-cached scaled-down cora for integration tests."""
    return load_dataset("cora", scale=0.1, feature_dim=24)


def numeric_gradient(f, x, eps=1e-6):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        grad[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad
