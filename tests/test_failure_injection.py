"""Failure injection: training under lost worker contributions."""

import numpy as np
import pytest

from repro import TrainConfig
from repro.core import FRAMEWORKS, build_trainer


def make_config(**overrides):
    base = dict(gnn_type="sage", hidden_dim=16, num_layers=2,
                fanouts=(5, 3), batch_size=64, epochs=3, hits_k=20,
                eval_every=3, seed=3)
    base.update(overrides)
    return TrainConfig(**base)


class TestConfigValidation:
    def test_probability_range(self):
        with pytest.raises(ValueError):
            TrainConfig(worker_failure_prob=1.0)
        with pytest.raises(ValueError):
            TrainConfig(worker_failure_prob=-0.1)
        assert TrainConfig(worker_failure_prob=0.5).worker_failure_prob == 0.5


class TestTrainingUnderFailures:
    def test_drops_recorded(self, small_split):
        config = make_config(worker_failure_prob=0.4)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 3,
                                config, rng=np.random.default_rng(0))
        result = trainer.train()
        assert result.dropped_contributions > 0

    def test_no_failures_by_default(self, small_split):
        config = make_config()
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 3,
                                config, rng=np.random.default_rng(0))
        result = trainer.train()
        assert result.dropped_contributions == 0

    def test_replicas_stay_synchronized(self, small_split):
        """Failed rounds must not desynchronize replicas under
        gradient averaging: survivors' average is broadcast."""
        config = make_config(worker_failure_prob=0.3, sync="grad")
        trainer = build_trainer(FRAMEWORKS["psgd_pa_plus"], small_split, 2,
                                config, rng=np.random.default_rng(0))
        trainer.train()
        a, b = [w.model.state_dict() for w in trainer.workers]
        for name in a:
            assert np.allclose(a[name], b[name], atol=1e-8)

    def test_still_learns_with_moderate_failures(self, small_split):
        config = make_config(worker_failure_prob=0.25, epochs=5,
                             eval_every=5)
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 2,
                                config, rng=np.random.default_rng(0))
        result = trainer.train()
        losses = [s.mean_loss for s in result.history if
                  np.isfinite(s.mean_loss)]
        assert losses[-1] < losses[0] * 1.1

    def test_model_averaging_with_failures(self, small_split):
        config = make_config(worker_failure_prob=0.3, sync="model")
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                config, rng=np.random.default_rng(0))
        result = trainer.train()
        a, b = [w.model.state_dict() for w in trainer.workers]
        for name in a:  # epoch-end averaging still runs
            assert np.allclose(a[name], b[name])
        assert result.dropped_contributions > 0

    def test_heavy_failures_do_not_crash(self, small_split):
        config = make_config(worker_failure_prob=0.9, epochs=2)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                config, rng=np.random.default_rng(0))
        result = trainer.train()
        assert np.isfinite(result.test.auc)
