"""Sampling subsystem: blocks, neighbor sampler, negatives, loader."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.sampling import (
    Block,
    EdgeBatchLoader,
    EdgeMembership,
    GlobalUniformNegativeSampler,
    GraphNeighborSource,
    NeighborSampler,
    PerSourceUniformNegativeSampler,
    classify_negatives,
    sample_block,
)


class TestBlock:
    def test_validation_edge_src_range(self):
        with pytest.raises(ValueError):
            Block(src_nodes=np.array([0, 1]), num_dst=1,
                  edge_src=np.array([5]), edge_dst=np.array([0]),
                  edge_weight=np.array([1.0]))

    def test_validation_edge_dst_range(self):
        with pytest.raises(ValueError):
            Block(src_nodes=np.array([0, 1]), num_dst=1,
                  edge_src=np.array([1]), edge_dst=np.array([1]),
                  edge_weight=np.array([1.0]))

    def test_validation_weight_alignment(self):
        with pytest.raises(ValueError):
            Block(src_nodes=np.array([0, 1]), num_dst=1,
                  edge_src=np.array([1]), edge_dst=np.array([0]),
                  edge_weight=np.array([1.0, 2.0]))

    def test_num_dst_bound(self):
        with pytest.raises(ValueError):
            Block(src_nodes=np.array([0]), num_dst=2,
                  edge_src=np.zeros(0, int), edge_dst=np.zeros(0, int),
                  edge_weight=np.zeros(0))

    def test_dst_nodes_prefix(self):
        b = Block(src_nodes=np.array([7, 9, 11]), num_dst=2,
                  edge_src=np.array([2]), edge_dst=np.array([0]),
                  edge_weight=np.array([1.0]))
        assert b.dst_nodes.tolist() == [7, 9]
        assert b.num_src == 3
        assert b.num_edges == 1


class TestGraphNeighborSource:
    def test_matches_graph_neighbors(self, cycle_graph):
        src = GraphNeighborSource(cycle_graph)
        nodes = np.array([0, 2])
        nbrs, weights, offsets = src.neighbors_batch(nodes)
        assert sorted(nbrs[offsets[0]:offsets[1]].tolist()) == \
            sorted(cycle_graph.neighbors(0).tolist())
        assert sorted(nbrs[offsets[1]:offsets[2]].tolist()) == \
            sorted(cycle_graph.neighbors(2).tolist())
        assert np.all(weights == 1.0)

    def test_isolated_node(self):
        g = Graph.from_edges(3, [[0, 1]])
        nbrs, _, offsets = GraphNeighborSource(g).neighbors_batch(
            np.array([2]))
        assert nbrs.size == 0
        assert offsets.tolist() == [0, 0]

    def test_weighted_graph(self):
        g = Graph.from_edges(2, [[0, 1]], edge_weights=[2.5])
        _, weights, _ = GraphNeighborSource(g).neighbors_batch(np.array([0]))
        assert weights.tolist() == [2.5]


class TestSampleBlock:
    def test_full_neighbors_with_minus_one(self, star_graph, rng):
        block = sample_block(GraphNeighborSource(star_graph),
                             np.array([0]), fanout=-1, rng=rng)
        assert block.num_edges == 4

    def test_fanout_limits_edges(self, star_graph, rng):
        block = sample_block(GraphNeighborSource(star_graph),
                             np.array([0]), fanout=2, rng=rng)
        assert block.num_edges == 2

    def test_fanout_without_replacement(self, star_graph, rng):
        block = sample_block(GraphNeighborSource(star_graph),
                             np.array([0]), fanout=4, rng=rng)
        sampled = block.src_nodes[block.edge_src]
        assert np.unique(sampled).size == 4

    def test_seeds_prefix_src_nodes(self, cycle_graph, rng):
        seeds = np.array([1, 3])
        block = sample_block(GraphNeighborSource(cycle_graph), seeds,
                             fanout=-1, rng=rng)
        assert block.src_nodes[:2].tolist() == [1, 3]

    def test_edges_are_real(self, featured_graph, rng):
        seeds = np.arange(10)
        block = sample_block(GraphNeighborSource(featured_graph), seeds,
                             fanout=3, rng=rng)
        for s, d in zip(block.edge_src, block.edge_dst):
            u = block.src_nodes[s]
            v = block.src_nodes[d]
            assert featured_graph.has_edge(int(u), int(v))


class TestNeighborSampler:
    def test_block_count(self, featured_graph, rng):
        sampler = NeighborSampler([5, 3, 2], rng=rng)
        cg = sampler.sample(featured_graph, np.array([0, 1]))
        assert cg.num_layers == 3

    def test_layer_chaining(self, featured_graph, rng):
        """Block k's src node set must be block k+1's frontier."""
        sampler = NeighborSampler([4, 2], rng=rng)
        cg = sampler.sample(featured_graph, np.array([0, 1, 2]))
        assert np.array_equal(cg.blocks[1].src_nodes[:cg.blocks[1].num_dst],
                              cg.seeds)
        assert cg.blocks[0].num_dst == cg.blocks[1].num_src

    def test_seeds_deduplicated(self, featured_graph, rng):
        sampler = NeighborSampler([3], rng=rng)
        cg = sampler.sample(featured_graph, np.array([5, 5, 2]))
        assert cg.seeds.tolist() == [2, 5]

    def test_input_nodes_cover_seeds(self, featured_graph, rng):
        sampler = NeighborSampler([3, 3], rng=rng)
        cg = sampler.sample(featured_graph, np.array([0, 7]))
        assert set(cg.seeds.tolist()) <= set(cg.input_nodes.tolist())

    def test_empty_fanouts_rejected(self):
        with pytest.raises(ValueError):
            NeighborSampler([])

    def test_deterministic_given_rng(self, featured_graph):
        a = NeighborSampler([3, 2], rng=np.random.default_rng(5)).sample(
            featured_graph, np.array([1, 2]))
        b = NeighborSampler([3, 2], rng=np.random.default_rng(5)).sample(
            featured_graph, np.array([1, 2]))
        for ba, bb in zip(a.blocks, b.blocks):
            assert np.array_equal(ba.src_nodes, bb.src_nodes)
            assert np.array_equal(ba.edge_src, bb.edge_src)


class TestEdgeMembership:
    def test_membership(self, triangle_graph):
        m = EdgeMembership(triangle_graph)
        assert (0, 1) in m
        assert (1, 0) in m
        assert (0, 0) in m  # self-pairs excluded from negatives
        assert not ((7, 8) in m)

    def test_contains_many(self, triangle_graph):
        m = EdgeMembership(triangle_graph)
        pairs = np.array([[0, 1], [1, 1], [0, 2], [1, 2]])
        assert m.contains_many(pairs).tolist() == [True, True, True, True]


class TestPerSourceSampler:
    def test_avoids_edges(self, featured_graph, rng):
        sampler = PerSourceUniformNegativeSampler(featured_graph, rng=rng)
        sources = featured_graph.edge_list()[:50, 0]
        pairs = sampler.sample(sources)
        membership = EdgeMembership(featured_graph)
        assert not membership.contains_many(pairs).any()

    def test_sources_preserved(self, featured_graph, rng):
        sampler = PerSourceUniformNegativeSampler(featured_graph, rng=rng)
        sources = np.array([3, 1, 4])
        pairs = sampler.sample(sources)
        assert np.array_equal(pairs[:, 0], sources)

    def test_candidate_restriction(self, featured_graph, rng):
        candidates = np.arange(20, 40)
        sampler = PerSourceUniformNegativeSampler(
            featured_graph, candidates=candidates, rng=rng)
        pairs = sampler.sample(np.zeros(30, dtype=np.int64))
        assert np.all((pairs[:, 1] >= 20) & (pairs[:, 1] < 40))

    def test_empty_candidates_rejected(self, featured_graph, rng):
        with pytest.raises(ValueError):
            PerSourceUniformNegativeSampler(
                featured_graph, candidates=np.array([], dtype=np.int64))


class TestGlobalSampler:
    def test_avoids_edges_and_self(self, featured_graph, rng):
        sampler = GlobalUniformNegativeSampler(featured_graph, rng=rng)
        pairs = sampler.sample(200)
        membership = EdgeMembership(featured_graph)
        assert not membership.contains_many(pairs).any()
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_count(self, featured_graph, rng):
        sampler = GlobalUniformNegativeSampler(featured_graph, rng=rng)
        assert sampler.sample(77).shape == (77, 2)

    def test_needs_two_candidates(self, featured_graph):
        with pytest.raises(ValueError):
            GlobalUniformNegativeSampler(featured_graph,
                                         candidates=np.array([0]))


class TestClassifyNegatives:
    def test_local_vs_global(self):
        assignment = np.array([0, 0, 1, 1])
        pairs = np.array([[0, 1], [0, 2], [2, 3], [1, 3]])
        local = classify_negatives(pairs, assignment)
        assert local.tolist() == [True, False, True, False]


class TestEdgeBatchLoader:
    def test_covers_all_edges(self, rng):
        edges = np.arange(20).reshape(10, 2)
        loader = EdgeBatchLoader(edges, 3, rng=rng)
        seen = np.concatenate(list(loader))
        assert sorted(map(tuple, seen.tolist())) == \
            sorted(map(tuple, edges.tolist()))

    def test_batch_sizes(self, rng):
        loader = EdgeBatchLoader(np.arange(20).reshape(10, 2), 4, rng=rng)
        sizes = [b.shape[0] for b in loader]
        assert sizes == [4, 4, 2]

    def test_len(self, rng):
        loader = EdgeBatchLoader(np.arange(20).reshape(10, 2), 4, rng=rng)
        assert len(loader) == 3

    def test_drop_last(self, rng):
        loader = EdgeBatchLoader(np.arange(20).reshape(10, 2), 4, rng=rng,
                                 drop_last=True)
        sizes = [b.shape[0] for b in loader]
        assert sizes == [4, 4]

    def test_shuffles_between_epochs(self):
        loader = EdgeBatchLoader(np.arange(40).reshape(20, 2), 20,
                                 rng=np.random.default_rng(0))
        first = next(iter(loader))
        second = next(iter(loader))
        assert not np.array_equal(first, second)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            EdgeBatchLoader(np.zeros((0, 2)), 4, rng=rng)

    def test_bad_batch_size(self, rng):
        with pytest.raises(ValueError):
            EdgeBatchLoader(np.arange(4).reshape(2, 2), 0, rng=rng)
