"""Async sync modes: SyncPlan determinism, config plumbing, equivalence.

The contract under test: ``sync="barrier"`` is bit-identical to the
legacy ``"grad"`` mode; ``ps``/``async``/``local_sgd`` are each
bit-identical same-seed across serial/thread/process backends
(accuracy, loss history and CommMeter ledgers); the ``SyncPlan``
round-trips through its dict form and makes every interleaving
decision from ``(seed, epoch, round)`` alone; and the TrainConfig /
Session validation and degrade rules hold.
"""

from __future__ import annotations

import multiprocessing as mp
import warnings

import numpy as np
import pytest

import repro
from repro.core.frameworks import run_framework
from repro.distributed import SYNC_MODES, SyncPlan, TrainConfig
from repro.distributed.sync import PLANNED_SYNC_MODES, ps_message_nbytes
from repro.graph import split_edges, synthetic_lp_graph
from repro.lint import get_rule, lint_source

HAS_FORK = "fork" in mp.get_all_start_methods()

ASYNC_MODES = ("ps", "async", "local_sgd")


@pytest.fixture(scope="module")
def split():
    """One medium community graph shared by every equivalence case."""
    rng = np.random.default_rng(515)
    graph = synthetic_lp_graph(num_nodes=140, target_edges=520,
                               feature_dim=16, num_communities=4, rng=rng)
    return split_edges(graph, rng=rng)


def _train(split, backend, workers, seed, sync, **knobs):
    config = TrainConfig(hidden_dim=16, num_layers=2, fanouts=(5, 5),
                         epochs=2, batch_size=64, seed=seed, sync=sync,
                         backend=backend, observe=False, **knobs)
    return run_framework("splpg", split, workers, config,
                         rng=np.random.default_rng(seed))


def _fingerprint(result):
    """Everything that must match bit for bit across backends."""
    return (
        result.test.hits,
        result.test.auc,
        result.best_epoch,
        tuple(s.mean_loss for s in result.history),
        tuple(tuple(sorted(s.comm.to_dict().items()))
              for s in result.history),
        tuple(sorted(result.comm_total.to_dict().items())),
        tuple(sorted((k, v) for k, v in result.sync_stats.items())),
    )


class TestSyncPlan:
    def test_dict_round_trip(self):
        plan = SyncPlan(mode="ps", num_workers=4, seed=7, max_staleness=3,
                        pull_prob=0.25, sync_every=6, name="p")
        again = SyncPlan.from_dict(plan.to_dict())
        assert again == plan

    def test_push_order_is_deterministic_permutation(self):
        plan = SyncPlan(mode="async", num_workers=5, seed=3)
        participants = [0, 2, 3, 4]
        order = plan.push_order(epoch=1, rnd=2, participants=participants)
        assert sorted(order) == participants
        assert list(order) == list(
            plan.push_order(epoch=1, rnd=2, participants=participants))
        # Different rounds reshuffle (at least somewhere in 8 rounds).
        orders = {tuple(plan.push_order(1, r, participants))
                  for r in range(8)}
        assert len(orders) > 1

    def test_should_pull_semantics(self):
        ps = SyncPlan(mode="ps", num_workers=3, seed=0, max_staleness=2)
        assert not ps.should_pull(0, 0, worker=1, staleness=2)
        assert ps.should_pull(0, 0, worker=1, staleness=3)
        coin = SyncPlan(mode="async", num_workers=3, seed=0, pull_prob=1.0)
        assert coin.should_pull(0, 0, worker=0, staleness=0)
        never = SyncPlan(mode="async", num_workers=3, seed=0, pull_prob=0.0)
        assert not never.should_pull(0, 0, worker=0, staleness=99)

    def test_is_sync_round(self):
        plan = SyncPlan(mode="local_sgd", num_workers=2, sync_every=4)
        assert not plan.is_sync_round(3)
        assert plan.is_sync_round(4)

    @pytest.mark.parametrize("bad", [
        dict(mode="barrier", num_workers=2),
        dict(mode="ps", num_workers=0),
        dict(mode="ps", num_workers=2, max_staleness=-1),
        dict(mode="async", num_workers=2, pull_prob=1.5),
        dict(mode="local_sgd", num_workers=2, sync_every=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SyncPlan(**bad)

    def test_ps_message_nbytes(self):
        assert ps_message_nbytes(1000) == 1000


class TestConfigPlumbing:
    def test_barrier_canonicalizes_to_grad(self):
        assert TrainConfig(sync="barrier").sync == "grad"

    def test_legacy_modes_accepted(self):
        assert TrainConfig(sync="grad").sync == "grad"
        assert TrainConfig(sync="model").sync == "model"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="sync"):
            TrainConfig(sync="gossip")

    @pytest.mark.parametrize("knobs", [
        dict(max_staleness=-1), dict(sync_every=0), dict(pull_prob=2.0),
    ])
    def test_bad_knobs_rejected(self, knobs):
        with pytest.raises(ValueError):
            TrainConfig(sync="ps", num_workers=2, **knobs)

    def test_plan_dict_accepted(self):
        plan = SyncPlan(mode="ps", num_workers=2, seed=5)
        config = TrainConfig(sync="ps", num_workers=2,
                             sync_plan=plan.to_dict())
        assert config.sync_plan == plan

    def test_plan_mode_mismatch_rejected(self):
        plan = SyncPlan(mode="async", num_workers=2)
        with pytest.raises(ValueError, match="mode"):
            TrainConfig(sync="ps", num_workers=2, sync_plan=plan)

    def test_restore_rejected_for_barrier_free_modes(self):
        for mode in ("ps", "async"):
            with pytest.raises(ValueError, match="restore"):
                TrainConfig(sync=mode, num_workers=2, recovery="restore")
        # local_sgd reaches barriers, so restore stays legal.
        TrainConfig(sync="local_sgd", num_workers=2, recovery="restore")

    @pytest.mark.parametrize("mode", ASYNC_MODES)
    def test_single_worker_degrades_with_warning(self, mode):
        with pytest.warns(RuntimeWarning, match="degrad"):
            config = TrainConfig(sync=mode, num_workers=1)
        assert config.sync == "grad"
        assert config.sync_plan is None

    def test_sync_modes_catalogue(self):
        assert SYNC_MODES == ("barrier", "ps", "async", "local_sgd")
        assert set(PLANNED_SYNC_MODES) <= set(SYNC_MODES)


class TestSessionRoundTrip:
    def test_sync_knobs_reach_config(self, split):
        session = (repro.Session(split).partition(3)
                   .sync("ps", max_staleness=5))
        config = session.config()
        assert config.sync == "ps"
        assert config.max_staleness == 5

    def test_each_mode_round_trips(self, split):
        for mode in SYNC_MODES:
            config = repro.Session(split).partition(2).sync(mode).config()
            expected = "grad" if mode == "barrier" else mode
            assert config.sync == expected

    def test_unknown_mode_rejected(self, split):
        with pytest.raises(ValueError, match="sync mode"):
            repro.Session(split).sync("gossip")

    def test_unknown_knob_rejected(self, split):
        with pytest.raises(ValueError, match="knob"):
            repro.Session(split).sync("ps", staleness=3)


class TestBarrierBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_barrier_equals_grad(self, split, seed):
        base = _train(split, "serial", 3, seed, sync="grad")
        canon = _train(split, "serial", 3, seed, sync="barrier")
        assert _fingerprint(canon) == _fingerprint(base)


class TestAsyncEquivalence:
    @pytest.mark.parametrize("mode", ASYNC_MODES)
    @pytest.mark.parametrize("workers", [2, 3])
    def test_thread_matches_serial(self, split, mode, workers):
        base = _train(split, "serial", workers, 0, sync=mode)
        other = _train(split, "thread", workers, 0, sync=mode)
        assert _fingerprint(other) == _fingerprint(base)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    @pytest.mark.parametrize("mode", ASYNC_MODES)
    def test_process_matches_serial(self, split, mode):
        base = _train(split, "serial", 3, 0, sync=mode)
        other = _train(split, "process", 3, 0, sync=mode)
        assert _fingerprint(other) == _fingerprint(base)

    def test_same_seed_repeats_bit_identically(self, split):
        a = _train(split, "serial", 3, 4, sync="async", pull_prob=0.3)
        b = _train(split, "serial", 3, 4, sync="async", pull_prob=0.3)
        assert _fingerprint(a) == _fingerprint(b)


class TestSyncStats:
    def test_ps_stats_shape(self, split):
        result = _train(split, "serial", 3, 0, sync="ps", max_staleness=2)
        stats = result.sync_stats
        assert stats["mode"] == "ps"
        assert stats["pushes"] > 0
        assert stats["pulls"] > 0
        assert stats["server_version"] == stats["pushes"]
        assert 0 <= stats["mean_staleness"] <= stats["max_staleness"]

    def test_ps_charges_sync_bytes(self, split):
        result = _train(split, "serial", 3, 0, sync="ps")
        assert result.comm_total.sync_bytes > 0

    def test_tighter_bound_pulls_more(self, split):
        tight = _train(split, "serial", 3, 0, sync="ps", max_staleness=0)
        loose = _train(split, "serial", 3, 0, sync="ps", max_staleness=16)
        assert tight.sync_stats["pulls"] > loose.sync_stats["pulls"]

    def test_local_sgd_stats(self, split):
        result = _train(split, "serial", 3, 0, sync="local_sgd",
                        sync_every=3)
        assert result.sync_stats == {"mode": "local_sgd", "sync_every": 3}


class TestR108:
    def test_undocumented_sync_symbol_flagged(self):
        code = "\"\"\"Mod doc.\"\"\"\ndef push_order(x):\n    return x\n"
        findings = lint_source(code, modpath="repro/distributed/sync.py",
                               rules=[get_rule("R108")])
        assert [f.rule_id for f in findings] == ["R108"]

    def test_nested_public_def_flagged(self):
        code = ('"""Mod doc."""\n'
                'def outer():\n'
                '    """Doc."""\n'
                '    def inner():\n'
                '        return 1\n'
                '    return inner\n')
        findings = lint_source(code, modpath="repro/distributed/sync.py",
                               rules=[get_rule("R108")])
        assert [f.message for f in findings] == [
            "public sync-mode function 'inner' has no docstring"]

    def test_missing_module_docstring_flagged(self):
        findings = lint_source("X = 1\n",
                               modpath="repro/distributed/sync.py",
                               rules=[get_rule("R108")])
        assert any("module" in f.message for f in findings)

    def test_sync_plan_class_flagged_anywhere(self):
        code = ('"""Mod doc."""\n'
                'class SyncPlan:\n'
                '    def decide(self):\n'
                '        return 0\n')
        findings = lint_source(code, modpath="repro/other.py",
                               rules=[get_rule("R108")])
        assert {f.message.split()[2] for f in findings} == {
            "class", "function"}

    def test_documented_module_clean(self):
        code = ('"""Mod doc."""\n'
                'def push(x):\n'
                '    """Doc."""\n'
                '    return x\n'
                'class SyncPlan:\n'
                '    """Doc."""\n')
        assert lint_source(code, modpath="repro/distributed/sync.py",
                           rules=[get_rule("R108")]) == []

    def test_shipped_tree_clean(self):
        from pathlib import Path

        from repro.lint import lint_paths

        src = Path(__file__).resolve().parents[1] / "src"
        findings = [f for f in lint_paths([src])
                    if f.rule_id == "R108"]
        assert findings == []


class TestCheckDocsExtraction:
    def test_directives(self, tmp_path):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(
            Path(__file__).resolve().parents[1] / "scripts"))
        try:
            from check_docs import extract_blocks
        finally:
            sys.path.pop(0)
        md = tmp_path / "page.md"
        md.write_text(
            "# t\n"
            "<!-- check_docs: setup\n"
            "x = 1\n"
            "-->\n"
            "```python\n"
            "y = x + 1\n"
            "```\n"
            "<!-- check_docs: skip -->\n"
            "```python\n"
            "broken(\n"
            "```\n")
        blocks = extract_blocks(md)
        assert [(code, hidden) for _, code, hidden in blocks] == [
            ("x = 1", True), ("y = x + 1", False)]
