"""End-to-end integration tests reproducing the paper's key orderings.

These use a slightly larger graph and more epochs than the unit tests,
so they are the slowest part of the suite — but they are the tests that
tie the code back to the paper's claims.
"""

import numpy as np
import pytest

from repro import TrainConfig, run_framework, split_edges
from repro.graph import synthetic_lp_graph


@pytest.fixture(scope="module")
def split():
    rng = np.random.default_rng(42)
    graph = synthetic_lp_graph(num_nodes=500, target_edges=2200,
                               feature_dim=32, num_communities=8,
                               intra_fraction=0.9, rng=rng)
    return split_edges(graph, rng=rng)


@pytest.fixture(scope="module")
def config():
    return TrainConfig(gnn_type="sage", hidden_dim=32, num_layers=2,
                       fanouts=(8, 4), batch_size=128, epochs=8,
                       hits_k=50, eval_every=2, seed=7)


@pytest.fixture(scope="module")
def results(split, config):
    """Train every framework once; reused across assertions."""
    names = ["centralized", "psgd_pa", "random_tma", "splpg_minus_minus",
             "splpg_minus", "splpg", "splpg_plus", "psgd_pa_plus"]
    out = {}
    for name in names:
        out[name] = run_framework(name, split, num_parts=4, config=config,
                                  rng=np.random.default_rng(11))
    return out


class TestAccuracyOrderings:
    def test_data_sharing_beats_pure_local(self, results):
        """Paper Sec III: + variants recover accuracy lost by locality."""
        assert results["splpg_plus"].test.hits > \
            results["splpg_minus_minus"].test.hits
        assert results["psgd_pa_plus"].test.hits > \
            results["psgd_pa"].test.hits

    def test_splpg_close_to_full_sharing(self, results):
        """Sparsified negatives mostly preserve accuracy (Fig 11/12)."""
        assert results["splpg"].test.hits >= \
            0.6 * results["splpg_plus"].test.hits

    def test_splpg_beats_vanilla_baselines(self, results):
        """Fig 10: SpLPG outperforms PSGD-PA and RandomTMA."""
        assert results["splpg"].test.hits > results["psgd_pa"].test.hits
        assert results["splpg"].test.hits > results["random_tma"].test.hits

    def test_centralized_is_upper_envelope(self, results):
        """No distributed variant should beat centralized by much."""
        ceiling = results["centralized"].test.hits * 1.25 + 0.05
        for name, res in results.items():
            assert res.test.hits <= ceiling, name


class TestCommunicationOrderings:
    def test_vanilla_methods_free(self, results):
        for name in ("psgd_pa", "random_tma", "splpg_minus",
                     "splpg_minus_minus"):
            assert results[name].comm_total.graph_data_bytes == 0, name

    def test_splpg_cheaper_than_full_sharing(self, results):
        """Fig 9: sparsification cuts the graph-data transfer."""
        splpg = results["splpg"].graph_data_gb_per_epoch
        plus = results["splpg_plus"].graph_data_gb_per_epoch
        assert splpg < plus
        saving = 1 - splpg / plus
        assert saving > 0.4  # paper reports ~60-85% at alpha=0.15

    def test_splpg_cheaper_than_baseline_plus(self, results):
        """Fig 8: SpLPG beats PSGD-PA+ on communication."""
        assert results["splpg"].graph_data_gb_per_epoch < \
            results["psgd_pa_plus"].graph_data_gb_per_epoch

    def test_sync_traffic_tracked_separately(self, results):
        res = results["psgd_pa"]
        assert res.comm_total.sync_bytes > 0
        assert res.comm_total.graph_data_bytes == 0


class TestTrainingSanity:
    def test_all_losses_decrease(self, results):
        for name, res in results.items():
            losses = [s.mean_loss for s in res.history]
            assert losses[-1] < losses[0] * 1.05, name

    def test_validation_curves_recorded(self, results):
        for res in results.values():
            assert len(res.val_curve()) >= 2

    def test_all_better_than_random_auc(self, results):
        for name, res in results.items():
            # RandomTMA destroys nearly all structure at this scale, so
            # it only has to clear chance; everything else must do
            # clearly better (the paper's Fig. 3 shows the same split).
            floor = 0.5 if name == "random_tma" else 0.55
            assert res.test.auc > floor, name
