"""CI gate: the shipped source tree must be lint-clean.

Runs the invariant checker over ``src/repro`` in-process so the gate
rides along with the tier-1 pytest run (no separate CI step needed to
catch regressions, though ``scripts/ci.sh`` also runs the CLI).
"""

from pathlib import Path

from repro.lint import lint_paths
from repro.lint.reporters import render_text

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def test_source_tree_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + render_text(findings)
