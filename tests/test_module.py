"""Module system tests: traversal, state dicts, Linear/MLP/Dropout."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Linear, Module, Parameter, Tensor, relu
from repro.nn.module import xavier_uniform


class TinyNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=rng)
        self.fc2 = Linear(3, 1, rng=rng)
        self.extra = Parameter(np.zeros(2))
        self.stack = [Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)]

    def forward(self, x):
        return self.fc2(relu(self.fc1(x)))


class TestTraversal:
    def test_named_parameters_paths(self, rng):
        net = TinyNet(rng)
        names = {n for n, _ in net.named_parameters()}
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "extra" in names
        assert "stack.0.weight" in names
        assert "stack.1.bias" in names

    def test_parameters_count(self, rng):
        net = TinyNet(rng)
        # fc1: 12+3, fc2: 3+1, extra: 2, stack: 2*(4+2)
        assert net.num_parameters() == 15 + 4 + 2 + 12

    def test_parameter_nbytes(self, rng):
        net = TinyNet(rng)
        assert net.parameter_nbytes() == net.num_parameters() * 4

    def test_modules_recursion(self, rng):
        net = TinyNet(rng)
        mods = list(net.modules())
        assert net in mods
        assert net.fc1 in mods
        assert net.stack[1] in mods


class TestTrainEval:
    def test_mode_propagates(self, rng):
        net = TinyNet(rng)
        net.eval()
        assert not net.fc1.training
        net.train()
        assert net.stack[0].training

    def test_zero_grad(self, rng):
        net = TinyNet(rng)
        x = Tensor(rng.standard_normal((5, 4)))
        net(x).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None


class TestStateDict:
    def test_roundtrip(self, rng):
        a, b = TinyNet(rng), TinyNet(np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_is_copy(self, rng):
        net = TinyNet(rng)
        sd = net.state_dict()
        sd["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_missing_key_rejected(self, rng):
        net = TinyNet(rng)
        sd = net.state_dict()
        del sd["extra"]
        with pytest.raises(KeyError):
            net.load_state_dict(sd)

    def test_unexpected_key_rejected(self, rng):
        net = TinyNet(rng)
        sd = net.state_dict()
        sd["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(sd)

    def test_shape_mismatch_rejected(self, rng):
        net = TinyNet(rng)
        sd = net.state_dict()
        sd["extra"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(sd)


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.standard_normal((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 4))))
        assert np.allclose(out.data, 0.0)

    def test_xavier_limits(self, rng):
        w = xavier_uniform((100, 100), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit
        assert w.std() == pytest.approx(limit / np.sqrt(3), rel=0.1)


class TestMLP:
    def test_depth(self, rng):
        mlp = MLP([4, 8, 8, 1], rng=rng)
        assert len(mlp.layers) == 3
        out = mlp(Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (5, 1)

    def test_requires_two_dims(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng=rng)

    def test_gradients_flow(self, rng):
        mlp = MLP([3, 5, 1], rng=rng)
        out = mlp(Tensor(rng.standard_normal((4, 3)))).sum()
        out.backward()
        for p in mlp.parameters():
            assert p.grad is not None


class TestDropoutLayer:
    def test_respects_training_mode(self, rng):
        layer = Dropout(0.9, rng=rng)
        x = Tensor(np.ones((8, 8)))
        layer.training = False
        assert layer(x) is x
        layer.training = True
        assert np.any(layer(x).data == 0.0)
