"""Analytical communication model vs the measured byte ledger."""

import numpy as np
import pytest

from repro import TrainConfig, run_framework, split_edges
from repro.distributed import estimate_epoch_comm
from repro.graph import synthetic_lp_graph
from repro.partition import partition_graph


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(9)
    graph = synthetic_lp_graph(num_nodes=800, target_edges=3600,
                               feature_dim=32, num_communities=8, rng=rng)
    split = split_edges(graph, rng=rng)
    config = TrainConfig(gnn_type="sage", hidden_dim=24, num_layers=2,
                         fanouts=(8, 4), batch_size=128, epochs=2,
                         hits_k=20, eval_every=3, seed=1)
    return split, config


class TestEstimatorStructure:
    def test_none_remote_is_free(self, setup):
        split, config = setup
        pg = partition_graph(split.train_graph, 4, "metis",
                             rng=np.random.default_rng(1), mirror=False)
        est = estimate_epoch_comm(pg, config.fanouts, config.batch_size,
                                  remote="none")
        assert est.graph_data_gb == 0.0

    def test_sparsified_cheaper_than_full(self, setup):
        split, config = setup
        pg = partition_graph(split.train_graph, 4, "metis",
                             rng=np.random.default_rng(1), mirror=True)
        sparse = estimate_epoch_comm(pg, config.fanouts, config.batch_size,
                                     remote="sparsified", alpha=0.15)
        full = estimate_epoch_comm(pg, config.fanouts, config.batch_size,
                                   remote="full",
                                   positive_mode="owned_cover")
        assert sparse.graph_data_gb < full.graph_data_gb

    def test_alpha_monotone(self, setup):
        split, config = setup
        pg = partition_graph(split.train_graph, 4, "metis",
                             rng=np.random.default_rng(1), mirror=True)
        estimates = [
            estimate_epoch_comm(pg, config.fanouts, config.batch_size,
                                remote="sparsified",
                                alpha=a).graph_data_gb
            for a in (0.05, 0.15, 0.4)
        ]
        assert estimates[0] < estimates[1] < estimates[2]

    def test_more_partitions_more_comm(self, setup):
        split, config = setup
        estimates = []
        for p in (2, 8):
            pg = partition_graph(split.train_graph, p, "metis",
                                 rng=np.random.default_rng(1), mirror=True)
            estimates.append(estimate_epoch_comm(
                pg, config.fanouts, config.batch_size,
                remote="sparsified").graph_data_gb)
        assert estimates[0] < estimates[1]


class TestEstimatorAccuracy:
    @pytest.mark.parametrize("framework,remote,mirror,mode", [
        ("splpg", "sparsified", True, "local"),
        ("psgd_pa_plus", "full", False, "owned_cover"),
    ])
    def test_within_factor_of_measured(self, setup, framework, remote,
                                       mirror, mode):
        split, config = setup
        pg = partition_graph(split.train_graph, 4, "metis",
                             rng=np.random.default_rng(1), mirror=mirror)
        est = estimate_epoch_comm(pg, config.fanouts, config.batch_size,
                                  remote=remote, alpha=0.15,
                                  positive_mode=mode)
        result = run_framework(framework, split, 4, config,
                               rng=np.random.default_rng(2))
        measured = result.graph_data_gb_per_epoch
        assert measured > 0
        ratio = est.graph_data_gb / measured
        # Analytical model: right order of magnitude by construction.
        assert 0.2 < ratio < 5.0, (est.graph_data_gb, measured)
