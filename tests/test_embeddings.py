"""DeepWalk / node2vec walks and skip-gram training."""

import numpy as np
import pytest

from repro.embeddings import (
    SkipGramEmbedding,
    deepwalk_embedding,
    node2vec_walks,
    random_walks,
    train_skipgram,
    walk_context_pairs,
)
from repro.eval import auc
from repro.graph import Graph


class TestRandomWalks:
    def test_shape(self, featured_graph, rng):
        walks = random_walks(featured_graph, num_walks=3, walk_length=10,
                             rng=rng)
        assert walks.shape == (3 * featured_graph.num_nodes, 10)

    def test_steps_follow_edges(self, featured_graph, rng):
        walks = random_walks(featured_graph, num_walks=1, walk_length=8,
                             rng=rng)
        for walk in walks[:20]:
            for a, b in zip(walk[:-1], walk[1:]):
                assert a == b or featured_graph.has_edge(int(a), int(b))

    def test_isolated_node_stays(self, rng):
        g = Graph.from_edges(3, [[0, 1]])
        walks = random_walks(g, num_walks=1, walk_length=5, rng=rng)
        isolated = walks[walks[:, 0] == 2]
        assert np.all(isolated == 2)

    def test_every_node_starts(self, featured_graph, rng):
        walks = random_walks(featured_graph, num_walks=1, walk_length=3,
                             rng=rng)
        assert set(walks[:, 0].tolist()) == \
            set(range(featured_graph.num_nodes))


class TestNode2VecWalks:
    def test_shape_and_validity(self, rng):
        g = Graph.from_edges(6, [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5],
                                 [5, 0]])
        walks = node2vec_walks(g, num_walks=2, walk_length=6, p=0.5,
                               q=2.0, rng=rng)
        assert walks.shape == (12, 6)
        for walk in walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert a == b or g.has_edge(int(a), int(b))

    def test_low_p_returns_often(self, rng):
        """p << 1 makes walks bounce back to the previous node."""
        g = Graph.from_edges(10, [[0, i] for i in range(1, 10)])
        bouncy = node2vec_walks(g, num_walks=2, walk_length=20, p=0.01,
                                q=1.0, rng=np.random.default_rng(0))
        free = node2vec_walks(g, num_walks=2, walk_length=20, p=100.0,
                              q=1.0, rng=np.random.default_rng(0))

        def return_rate(walks):
            returns = (walks[:, 2:] == walks[:, :-2])
            return returns.mean()

        assert return_rate(bouncy) > return_rate(free)

    def test_invalid_params(self, rng):
        g = Graph.from_edges(3, [[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            node2vec_walks(g, p=0.0, rng=rng)


class TestContextPairs:
    def test_window_pairs(self):
        walks = np.array([[0, 1, 2]])
        pairs = walk_context_pairs(walks, window=1)
        as_set = set(map(tuple, pairs.tolist()))
        assert as_set == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_two(self):
        walks = np.array([[0, 1, 2]])
        pairs = walk_context_pairs(walks, window=2)
        as_set = set(map(tuple, pairs.tolist()))
        assert (0, 2) in as_set and (2, 0) in as_set

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            walk_context_pairs(np.zeros((1, 3), dtype=np.int64), window=0)


class TestSkipGram:
    def test_embedding_shapes(self, rng):
        pairs = rng.integers(0, 20, size=(500, 2))
        emb = train_skipgram(20, pairs, dim=8, epochs=1, rng=rng)
        assert emb.vectors.shape == (20, 8)
        assert emb.dim == 8

    def test_cooccurring_nodes_closer(self, rng):
        """Nodes that always co-occur should end up more similar than
        nodes that never do."""
        # two cliques of contexts: {0..4} and {5..9}
        pairs = []
        for _ in range(400):
            a, b = rng.integers(0, 5, size=2)
            pairs.append([a, b])
            a, b = rng.integers(5, 10, size=2)
            pairs.append([a, b])
        emb = train_skipgram(10, np.array(pairs), dim=16, epochs=6,
                             negatives=4, rng=rng)
        z = emb.vectors / np.linalg.norm(emb.vectors, axis=1,
                                         keepdims=True)
        same = float(z[0] @ z[1])
        cross = float(z[0] @ z[6])
        assert same > cross

    def test_empty_pairs_rejected(self, rng):
        with pytest.raises(ValueError):
            train_skipgram(5, np.zeros((0, 2), dtype=np.int64), rng=rng)


class TestDeepWalkEndToEnd:
    def test_beats_chance_on_link_prediction(self, small_split):
        rng = np.random.default_rng(0)
        emb = deepwalk_embedding(small_split.train_graph, dim=24,
                                 num_walks=5, walk_length=15, epochs=2,
                                 rng=rng)
        pos = emb.score_pairs(small_split.test_pos)
        neg = emb.score_pairs(small_split.test_neg)
        assert auc(pos, neg) > 0.6
