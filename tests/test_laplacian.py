"""Laplacian and exact effective resistance (validates Theorems 1-2)."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    exact_effective_resistance,
    laplacian,
    laplacian_pseudoinverse,
    normalized_laplacian,
    spectral_gap,
)
from repro.sparsify import approx_effective_resistance


class TestLaplacian:
    def test_row_sums_zero(self, cycle_graph):
        lap = laplacian(cycle_graph).toarray()
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_diagonal_is_degree(self, star_graph):
        lap = laplacian(star_graph).toarray()
        assert np.allclose(np.diag(lap), star_graph.degrees)

    def test_positive_semidefinite(self, rng):
        g = Graph.from_edges(6, [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5],
                                 [5, 0], [0, 3]])
        eigvals = np.linalg.eigvalsh(laplacian(g).toarray())
        assert eigvals.min() > -1e-10

    def test_weighted_laplacian(self):
        g = Graph.from_edges(2, [[0, 1]], edge_weights=[4.0])
        lap = laplacian(g).toarray()
        assert np.allclose(lap, [[4.0, -4.0], [-4.0, 4.0]])

    def test_normalized_eigenvalues_bounded(self, cycle_graph):
        lsym = normalized_laplacian(cycle_graph).toarray()
        eigvals = np.linalg.eigvalsh(lsym)
        assert eigvals.min() > -1e-10
        assert eigvals.max() <= 2.0 + 1e-10

    def test_normalized_isolated_node(self):
        g = Graph.from_edges(3, [[0, 1]])
        lsym = normalized_laplacian(g).toarray()
        assert np.allclose(lsym[2], 0.0)

    def test_pseudoinverse_property(self, cycle_graph):
        lap = laplacian(cycle_graph).toarray()
        pinv = laplacian_pseudoinverse(cycle_graph)
        assert np.allclose(lap @ pinv @ lap, lap, atol=1e-8)


class TestExactEffectiveResistance:
    def test_single_edge(self):
        g = Graph.from_edges(2, [[0, 1]])
        assert np.allclose(exact_effective_resistance(g), [1.0])

    def test_path_resistance_is_length(self, path_graph):
        # Series resistors: r(0,3) = 3.
        r = exact_effective_resistance(path_graph, np.array([[0, 3]]))
        assert np.allclose(r, [3.0])

    def test_cycle_resistance(self, cycle_graph):
        # 5-cycle edge: 1 ohm parallel with 4 ohms = 4/5.
        r = exact_effective_resistance(cycle_graph)
        assert np.allclose(r, 0.8)

    def test_complete_graph(self):
        n = 5
        edges = [[i, j] for i in range(n) for j in range(i + 1, n)]
        g = Graph.from_edges(n, edges)
        # K_n edge resistance = 2/n.
        r = exact_effective_resistance(g)
        assert np.allclose(r, 2.0 / n)

    def test_parallel_edges_via_weights(self):
        # weight-2 edge = two parallel unit resistors = 1/2 ohm.
        g = Graph.from_edges(2, [[0, 1]], edge_weights=[2.0])
        assert np.allclose(exact_effective_resistance(g), [0.5])

    def test_defaults_to_all_edges(self, triangle_graph):
        r = exact_effective_resistance(triangle_graph)
        assert r.shape == (3,)
        assert np.allclose(r, 2.0 / 3.0)


class TestTheorem2Bounds:
    """1/2 (1/du + 1/dv) <= r_uv <= (1/gamma)(1/du + 1/dv)."""

    @pytest.mark.parametrize("fixture", ["cycle_graph", "triangle_graph",
                                         "path_graph", "star_graph"])
    def test_bounds_hold(self, fixture, request):
        g = request.getfixturevalue(fixture)
        edges = g.edge_list()
        exact = exact_effective_resistance(g, edges)
        approx = approx_effective_resistance(g, edges)
        gamma = spectral_gap(g)
        assert np.all(exact >= 0.5 * approx - 1e-9)
        assert np.all(exact <= approx / gamma + 1e-9)

    def test_bounds_on_random_graph(self, rng):
        from repro.graph import chung_lu_graph
        g = chung_lu_graph(40, 120, rng=rng)
        # restrict to the giant component's edges (ER needs connectivity)
        edges = g.edge_list()
        exact = exact_effective_resistance(g, edges)
        approx = approx_effective_resistance(g, edges)
        # The lower bound holds unconditionally.
        assert np.all(exact >= 0.5 * approx - 1e-9)


class TestSpectralGap:
    def test_complete_graph_gap(self):
        n = 4
        edges = [[i, j] for i in range(n) for j in range(i + 1, n)]
        g = Graph.from_edges(n, edges)
        # K_n normalized Laplacian eigenvalues: 0, n/(n-1) x (n-1).
        assert np.isclose(spectral_gap(g), n / (n - 1))

    def test_disconnected_graph_zero_gap(self):
        g = Graph.from_edges(4, [[0, 1], [2, 3]])
        assert np.isclose(spectral_gap(g), 0.0, atol=1e-9)
