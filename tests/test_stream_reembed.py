"""Reembedder: frontier patching must equal a full refresh bit for bit."""

import numpy as np
import pytest

from repro.graph import synthetic_lp_graph
from repro.nn.models import build_model
from repro.stream import (
    ArrivalPlan,
    MutableGraph,
    Reembedder,
    affected_frontier,
)
from repro.stream.errors import StreamStateError


def _setup(seed=0, nodes=40, edges=120, dim=6):
    graph = synthetic_lp_graph(nodes, edges, feature_dim=dim,
                               rng=np.random.default_rng(seed))
    model = build_model("sage", dim, hidden_dim=8, num_layers=2,
                        seed=seed)
    return graph, model


class TestAffectedFrontier:
    def test_expands_by_hops_over_union_adjacency(self):
        old, _ = _setup()
        mutable = MutableGraph(old)
        zero_hop = affected_frontier(old, old, [3], hops=0)
        assert zero_hop.tolist() == [3]
        one_hop = affected_frontier(old, old, [3], hops=1)
        expected = {3} | set(old.neighbors(3).tolist())
        assert set(one_hop.tolist()) == expected

    def test_deleted_edge_still_conducts(self):
        """Both endpoints of a removed edge must stay in the frontier
        expansion — the old adjacency participates in the union."""
        old, _ = _setup()
        u, v = (int(x) for x in old.edge_list()[0])
        from repro.stream import StreamEvent
        mutable = MutableGraph(old)
        mutable.apply([StreamEvent("delete", 0, u=u, v=v)], 0)
        new = mutable.snapshot()
        frontier = affected_frontier(old, new, [u], hops=1)
        assert v in frontier.tolist()

    def test_empty_touched_set(self):
        old, _ = _setup()
        assert affected_frontier(old, old, [], hops=2).size == 0


class TestRefreshEquivalence:
    def test_frontier_patch_is_bitwise_equal_to_full(self):
        graph, model = _setup()
        plan = ArrivalPlan.generate(graph.num_nodes, 4, seed=7,
                                    inserts_per_tick=5.0,
                                    deletes_per_tick=2.0,
                                    drifts_per_tick=2.0)
        mutable = MutableGraph(graph)
        incremental = Reembedder(model, batch_size=8)
        incremental.full_refresh(mutable.snapshot())
        for tick in range(4):
            delta = mutable.apply(plan.events_at(tick), tick)
            snap = mutable.snapshot()
            incremental.frontier_refresh(snap, delta.touched_nodes())
            full = Reembedder(model, batch_size=8)
            full.full_refresh(snap)
            np.testing.assert_array_equal(incremental.table, full.table)
            assert incremental.version(snap) == full.version(snap)

    def test_untouched_tick_recomputes_nothing(self):
        graph, model = _setup()
        reembedder = Reembedder(model, batch_size=8)
        reembedder.full_refresh(graph)
        before = reembedder.rows_recomputed
        rows = reembedder.frontier_refresh(graph, [])
        assert rows == 0
        assert reembedder.rows_recomputed == before

    def test_first_frontier_call_falls_back_to_full(self):
        graph, model = _setup()
        reembedder = Reembedder(model, batch_size=8)
        rows = reembedder.frontier_refresh(graph, [0])
        assert rows == graph.num_nodes


class TestArtifacts:
    def test_version_tracks_table_and_structure(self):
        graph, model = _setup()
        reembedder = Reembedder(model, batch_size=8)
        reembedder.full_refresh(graph)
        v1 = reembedder.version(graph)
        from repro.stream import StreamEvent
        mutable = MutableGraph(graph)
        delta = mutable.apply([StreamEvent("drift", 0, u=0, scale=0.5)],
                              0)
        snap = mutable.snapshot()
        reembedder.frontier_refresh(snap, delta.touched_nodes())
        assert reembedder.version(snap) != v1

    def test_make_artifact_checksums(self):
        graph, model = _setup()
        reembedder = Reembedder(model, batch_size=8)
        reembedder.full_refresh(graph)
        assignment = np.zeros(graph.num_nodes, dtype=np.int64)
        assignment[graph.num_nodes // 2:] = 1
        artifact = reembedder.make_artifact(graph, assignment, 2)
        assert artifact.model_version == reembedder.version(graph)
        np.testing.assert_array_equal(artifact.embedding_table(),
                                      reembedder.table)

    def test_methods_require_a_table(self):
        graph, model = _setup()
        reembedder = Reembedder(model)
        with pytest.raises(StreamStateError):
            reembedder.version(graph)
        with pytest.raises(StreamStateError):
            reembedder.make_artifact(
                graph, np.zeros(graph.num_nodes, dtype=np.int64), 1)
