"""Documentation link integrity (scripts/check_links.py)."""

import importlib.util
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[1] / "scripts" / "check_links.py"

spec = importlib.util.spec_from_file_location("check_links", SCRIPT)
check_links = importlib.util.module_from_spec(spec)
sys.modules.setdefault("check_links", check_links)
spec.loader.exec_module(check_links)


class TestSlug:
    def test_plain_heading(self):
        assert check_links.github_slug("Quick start") == "quick-start"

    def test_code_and_punctuation(self):
        assert check_links.github_slug(
            "Observability (`repro.obs`)") == "observability-reproobs"


class TestChecker:
    def test_repo_docs_all_resolve(self):
        errors = []
        for path in check_links.DOC_FILES:
            errors.extend(check_links.check_file(path))
        assert errors == []

    def test_broken_link_detected(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text("# T\n\nsee [gone](missing.md) and [a](#nope)\n")
        errors = check_links.check_file(md)
        assert len(errors) == 2
        assert "missing.md" in errors[0] and "#nope" in errors[1]

    def test_code_fences_and_urls_skipped(self, tmp_path):
        md = tmp_path / "page.md"
        md.write_text("# T\n\n```\n[x](fake.md)\n```\n"
                      "[site](https://example.com)\n")
        assert check_links.check_file(md) == []

    def test_anchor_into_other_file(self, tmp_path):
        other = tmp_path / "other.md"
        other.write_text("# Real Heading\n")
        md = tmp_path / "page.md"
        md.write_text("[ok](other.md#real-heading)\n"
                      "[bad](other.md#fake-heading)\n")
        errors = check_links.check_file(md)
        assert len(errors) == 1 and "fake-heading" in errors[0]
