"""Property-based tests for samplers, loader and comm arithmetic."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.distributed import CommMeter, CommRecord
from repro.graph import Graph
from repro.sampling import (
    EdgeBatchLoader,
    EdgeMembership,
    GraphNeighborSource,
    NeighborSampler,
    PerSourceUniformNegativeSampler,
    sample_block,
)

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs_with_room(draw):
    """Graphs sparse enough that negative sampling always succeeds."""
    n = draw(st.integers(8, 30))
    extra = draw(st.integers(0, n))
    backbone = [(i, i + 1) for i in range(n - 1)]
    extras = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=extra, max_size=extra))
    edges = backbone + [e for e in extras if e[0] != e[1]]
    graph = Graph.from_edges(n, np.asarray(edges, dtype=np.int64))
    assume(graph.num_edges < n * (n - 1) // 4)
    return graph


class TestLoaderProperties:
    @common_settings
    @given(st.integers(1, 40), st.integers(1, 15),
           st.integers(0, 2**31 - 1))
    def test_batches_partition_the_edges(self, m, batch_size, seed):
        edges = np.arange(2 * m).reshape(m, 2)
        loader = EdgeBatchLoader(edges, batch_size,
                                 rng=np.random.default_rng(seed))
        seen = np.concatenate(list(loader))
        assert seen.shape == edges.shape
        assert sorted(map(tuple, seen.tolist())) == \
            sorted(map(tuple, edges.tolist()))

    @common_settings
    @given(st.integers(1, 40), st.integers(1, 15),
           st.integers(0, 2**31 - 1))
    def test_len_matches_iteration(self, m, batch_size, seed):
        edges = np.arange(2 * m).reshape(m, 2)
        loader = EdgeBatchLoader(edges, batch_size,
                                 rng=np.random.default_rng(seed))
        assert len(list(loader)) == len(loader)


class TestNegativeSamplerProperties:
    @common_settings
    @given(graphs_with_room(), st.integers(0, 2**31 - 1))
    def test_never_emits_edges(self, graph, seed):
        # The sampler is deliberately non-strict after max_rounds
        # rejection rounds (DGL semantics); with a generous round
        # budget and a capped max degree, a surviving collision would
        # need ~2^-64 luck, so the property is effectively exact.
        assume(graph.degrees.max() <= graph.num_nodes // 2)
        rng = np.random.default_rng(seed)
        sampler = PerSourceUniformNegativeSampler(graph, rng=rng,
                                                  max_rounds=64)
        sources = graph.edge_list()[:, 0]
        pairs = sampler.sample(sources)
        assert not EdgeMembership(graph).contains_many(pairs).any()

    @common_settings
    @given(graphs_with_room(), st.integers(0, 2**31 - 1))
    def test_sources_unchanged(self, graph, seed):
        rng = np.random.default_rng(seed)
        sampler = PerSourceUniformNegativeSampler(graph, rng=rng)
        sources = np.arange(graph.num_nodes // 2, dtype=np.int64)
        pairs = sampler.sample(sources)
        assert np.array_equal(pairs[:, 0], sources)


class TestBlockProperties:
    @common_settings
    @given(graphs_with_room(), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    def test_block_edges_exist_in_graph(self, graph, fanout, seed):
        rng = np.random.default_rng(seed)
        seeds = np.arange(min(5, graph.num_nodes), dtype=np.int64)
        block = sample_block(GraphNeighborSource(graph), seeds, fanout,
                             rng)
        for s, d in zip(block.edge_src, block.edge_dst):
            u = int(block.src_nodes[s])
            v = int(block.src_nodes[d])
            assert graph.has_edge(u, v)

    @common_settings
    @given(graphs_with_room(), st.integers(1, 4),
           st.integers(0, 2**31 - 1))
    def test_fanout_bound_per_destination(self, graph, fanout, seed):
        rng = np.random.default_rng(seed)
        seeds = np.arange(min(6, graph.num_nodes), dtype=np.int64)
        block = sample_block(GraphNeighborSource(graph), seeds, fanout,
                             rng)
        counts = np.bincount(block.edge_dst, minlength=block.num_dst)
        assert counts.max(initial=0) <= fanout

    @common_settings
    @given(graphs_with_room(), st.integers(0, 2**31 - 1))
    def test_layer_chain_invariant(self, graph, seed):
        rng = np.random.default_rng(seed)
        sampler = NeighborSampler([3, 2], rng=rng)
        seeds = np.arange(min(4, graph.num_nodes), dtype=np.int64)
        cg = sampler.sample(graph, seeds)
        # each block's dst set equals the next block's seed prefix
        assert np.array_equal(
            cg.blocks[0].src_nodes[:cg.blocks[0].num_dst],
            cg.blocks[1].src_nodes)
        assert np.array_equal(cg.blocks[1].dst_nodes, cg.seeds)


class TestCommProperties:
    @common_settings
    @given(st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 1000),
                              st.integers(0, 1000)),
                    min_size=1, max_size=10))
    def test_total_equals_sum_of_epochs(self, charges):
        meter = CommMeter()
        expected = CommRecord()
        for feat_nodes, edges, sync in charges:
            meter.charge_features(feat_nodes, 4)
            meter.charge_structure(edges, 1)
            meter.charge_sync(sync)
            expected += CommRecord(
                feature_bytes=feat_nodes * 16,
                structure_bytes=edges * 16 + 8,
                sync_bytes=sync)
            meter.end_epoch()
        total = meter.total()
        assert total.feature_bytes == expected.feature_bytes
        assert total.structure_bytes == expected.structure_bytes
        assert total.sync_bytes == expected.sync_bytes

    @common_settings
    @given(st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 10**6))
    def test_graph_data_excludes_sync_always(self, f, s, y):
        rec = CommRecord(feature_bytes=f, structure_bytes=s, sync_bytes=y)
        assert rec.graph_data_bytes == f + s
        assert rec.total_bytes == f + s + y
