"""Graph and split persistence."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    load_graph,
    load_split,
    save_graph,
    save_split,
    split_edges,
)


class TestGraphIO:
    def test_roundtrip_plain(self, cycle_graph, tmp_path):
        path = str(tmp_path / "g.npz")
        save_graph(cycle_graph, path)
        loaded = load_graph(path)
        assert np.array_equal(loaded.indptr, cycle_graph.indptr)
        assert np.array_equal(loaded.indices, cycle_graph.indices)
        assert loaded.weights is None and loaded.features is None

    def test_roundtrip_weighted_featured(self, tmp_path):
        g = Graph.from_edges(
            4, [[0, 1], [2, 3]],
            edge_weights=[1.5, 2.5],
            features=np.arange(8, dtype=np.float32).reshape(4, 2))
        path = str(tmp_path / "g.npz")
        save_graph(g, path)
        loaded = load_graph(path)
        assert np.allclose(loaded.edge_weight_list(), g.edge_weight_list())
        assert np.allclose(loaded.features, g.features)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_graph(str(tmp_path / "none.npz"))

    def test_wrong_format(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_graph(path)


class TestSplitIO:
    def test_roundtrip(self, featured_graph, rng, tmp_path):
        split = split_edges(featured_graph, rng=rng)
        path = str(tmp_path / "split.npz")
        save_split(split, path)
        loaded = load_split(path)
        assert np.array_equal(loaded.train_pos, split.train_pos)
        assert np.array_equal(loaded.test_neg, split.test_neg)
        assert loaded.train_graph.num_edges == split.train_graph.num_edges
        assert np.allclose(loaded.train_graph.features,
                           split.train_graph.features)

    def test_loaded_split_trains(self, featured_graph, rng, tmp_path):
        from repro import TrainConfig, run_framework
        split = split_edges(featured_graph, rng=rng)
        path = str(tmp_path / "split.npz")
        save_split(split, path)
        loaded = load_split(path)
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=1,
                          hits_k=20, seed=0)
        result = run_framework("centralized", loaded, 1, cfg)
        assert np.isfinite(result.test.auc)

    def test_wrong_format(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError):
            load_split(path)

    def test_graph_file_is_not_split(self, cycle_graph, tmp_path):
        path = str(tmp_path / "g.npz")
        save_graph(cycle_graph, path)
        with pytest.raises(ValueError):
            load_split(path)
