"""Autograd engine tests: forward values and gradient checks."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn import (
    Tensor,
    concat,
    dropout,
    elu,
    exp,
    gather,
    leaky_relu,
    log,
    relu,
    segment_mean,
    segment_softmax,
    segment_sum,
    sigmoid,
    sparse_matmul,
    tanh,
)

from conftest import numeric_gradient


def check_grad(build, shapes, seed=0, tol=1e-5):
    """Compare autograd gradients against central differences.

    ``build(tensors) -> Tensor`` must return a scalar-reducible output;
    we reduce with a fixed random projection to get a scalar.
    """
    rng = np.random.default_rng(seed)
    arrays = [rng.standard_normal(s) for s in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = build(tensors)
    proj = rng.standard_normal(out.data.shape)

    loss = (out * Tensor(proj)).sum()
    loss.backward()

    for arr, t in zip(arrays, tensors):
        def scalar():
            fresh = [Tensor(a) for a in arrays]
            return float((build(fresh).data * proj).sum())
        num = numeric_gradient(scalar, arr)
        assert t.grad is not None
        np.testing.assert_allclose(t.grad, num, rtol=tol, atol=tol)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        assert np.allclose((a + b).data, 1.0 + np.arange(3.0))

    def test_scalar_ops(self):
        a = Tensor(np.array([2.0]))
        assert (a * 3).data[0] == 6.0
        assert (3 * a).data[0] == 6.0
        assert (a - 1).data[0] == 1.0
        assert (1 - a).data[0] == -1.0
        assert (a / 2).data[0] == 1.0
        assert (-a).data[0] == -2.0
        assert (a ** 2).data[0] == 4.0

    def test_matmul(self):
        a = Tensor(np.eye(2))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.allclose((a @ b).data, b.data)

    def test_reshape_transpose(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.reshape(3, 2).shape == (3, 2)
        assert a.T.shape == (3, 2)

    def test_sum_mean(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.sum().item() == 15.0
        assert a.mean().item() == 2.5
        assert np.allclose(a.sum(axis=0).data, [3.0, 5.0, 7.0])
        assert np.allclose(a.mean(axis=1).data, [1.0, 4.0])

    def test_activations_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(relu(x).data, [0.0, 0.0, 2.0])
        assert np.allclose(leaky_relu(x, 0.1).data, [-0.1, 0.0, 2.0])
        assert np.allclose(sigmoid(Tensor(np.array([0.0]))).data, [0.5])
        assert np.allclose(tanh(Tensor(np.array([0.0]))).data, [0.0])
        assert np.allclose(elu(x).data[1:], [0.0, 2.0])
        assert elu(x).data[0] == pytest.approx(np.exp(-1.0) - 1.0)

    def test_exp_log(self):
        x = Tensor(np.array([1.0, 2.0]))
        assert np.allclose(log(exp(x)).data, x.data)

    def test_gather(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        out = gather(x, np.array([2, 0, 2]))
        assert np.allclose(out.data, x.data[[2, 0, 2]])

    def test_concat(self):
        a = Tensor(np.ones((2, 2)))
        b = Tensor(np.zeros((2, 3)))
        assert concat([a, b], axis=1).shape == (2, 5)

    def test_segment_sum(self):
        x = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = segment_sum(x, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data, [[3.0], [3.0]])

    def test_segment_sum_empty_segment(self):
        x = Tensor(np.array([[1.0]]))
        out = segment_sum(x, np.array([1]), 3)
        assert np.allclose(out.data, [[0.0], [1.0], [0.0]])

    def test_segment_mean(self):
        x = Tensor(np.array([[2.0], [4.0], [8.0]]))
        out = segment_mean(x, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data, [[3.0], [8.0]])

    def test_segment_softmax_normalizes(self):
        scores = Tensor(np.array([[1.0], [2.0], [5.0]]))
        seg = np.array([0, 0, 1])
        out = segment_softmax(scores, seg, 2)
        sums = np.zeros(2)
        np.add.at(sums, seg, out.data.ravel())
        assert np.allclose(sums, 1.0)

    def test_segment_softmax_stability(self):
        scores = Tensor(np.array([[1000.0], [1001.0]]))
        out = segment_softmax(scores, np.array([0, 0]), 1)
        assert np.all(np.isfinite(out.data))
        assert np.allclose(out.data.sum(), 1.0)

    def test_sparse_matmul(self):
        mat = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 3.0]]))
        x = Tensor(np.array([[1.0], [1.0]]))
        assert np.allclose(sparse_matmul(mat, x).data, [[3.0], [3.0]])

    def test_dropout_eval_identity(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        assert dropout(x, 0.5, training=False) is x
        assert dropout(x, 0.0, training=True) is x

    def test_dropout_scaling(self, rng):
        x = Tensor(np.ones((2000,)))
        out = dropout(x, 0.5, training=True, rng=rng)
        # Inverted dropout keeps the expectation.
        assert out.data.mean() == pytest.approx(1.0, abs=0.1)
        assert set(np.unique(out.data)).issubset({0.0, 2.0})

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.5, training=True)


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_nonscalar_needs_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_grad_accumulates(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t.sum() + t.sum()).backward()
        assert np.allclose(t.grad, 2.0)

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_detach_breaks_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_diamond_graph_gradient(self):
        # y = x*x + x  reused node; dy/dx = 2x + 1
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x
        y.backward()
        assert np.allclose(x.grad, [7.0])


class TestGradcheck:
    def test_add(self):
        check_grad(lambda t: t[0] + t[1], [(3, 2), (3, 2)])

    def test_add_broadcast(self):
        check_grad(lambda t: t[0] + t[1], [(3, 2), (2,)])

    def test_mul(self):
        check_grad(lambda t: t[0] * t[1], [(4,), (4,)])

    def test_div(self):
        def build(t):
            return t[0] / (t[1] * t[1] + 1.0)
        check_grad(build, [(3,), (3,)])

    def test_matmul(self):
        check_grad(lambda t: t[0] @ t[1], [(3, 4), (4, 2)])

    def test_pow(self):
        check_grad(lambda t: (t[0] * t[0] + 1.0) ** 1.5, [(4,)])

    def test_sum_axis(self):
        check_grad(lambda t: t[0].sum(axis=0), [(3, 4)])

    def test_mean(self):
        check_grad(lambda t: t[0].mean(axis=1), [(3, 4)])

    def test_reshape(self):
        check_grad(lambda t: t[0].reshape(2, 6), [(3, 4)])

    def test_transpose(self):
        check_grad(lambda t: t[0].T @ t[1], [(3, 2), (3, 2)])

    def test_sigmoid(self):
        check_grad(lambda t: sigmoid(t[0]), [(5,)])

    def test_tanh(self):
        check_grad(lambda t: tanh(t[0]), [(5,)])

    def test_relu(self):
        # Shift away from the kink for finite differences.
        check_grad(lambda t: relu(t[0] + 5.0), [(4,)])

    def test_leaky_relu(self):
        check_grad(lambda t: leaky_relu(t[0] + 5.0), [(4,)])

    def test_elu(self):
        check_grad(lambda t: elu(t[0] - 5.0), [(4,)])

    def test_exp_log(self):
        check_grad(lambda t: log(exp(t[0]) + 1.0), [(4,)])

    def test_gather(self):
        idx = np.array([0, 2, 2, 1])
        check_grad(lambda t: gather(t[0], idx), [(3, 2)])

    def test_concat(self):
        check_grad(lambda t: concat([t[0], t[1]], axis=1), [(2, 2), (2, 3)])

    def test_segment_sum(self):
        seg = np.array([0, 1, 1, 2])
        check_grad(lambda t: segment_sum(t[0], seg, 3), [(4, 2)])

    def test_segment_mean(self):
        seg = np.array([0, 0, 1, 1])
        check_grad(lambda t: segment_mean(t[0], seg, 2), [(4, 2)])

    def test_segment_softmax(self):
        seg = np.array([0, 0, 1, 1, 1])
        check_grad(lambda t: segment_softmax(t[0], seg, 2), [(5, 1)])

    def test_sparse_matmul(self):
        mat = sp.csr_matrix(np.array([[1.0, 0.0, 2.0],
                                      [0.0, 3.0, 0.0]]))
        check_grad(lambda t: sparse_matmul(mat, t[0]), [(3, 2)])

    def test_composite_expression(self):
        def build(t):
            return sigmoid(t[0] @ t[1]) * t[2]
        check_grad(build, [(2, 3), (3, 2), (2, 2)])
