"""Softmax / log-softmax / cross-entropy ops."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    cross_entropy,
    gather_cols,
    log_softmax,
    softmax,
)

from conftest import numeric_gradient


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        out = softmax(x, axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_stability(self):
        x = Tensor(np.array([[1000.0, 1001.0]]))
        out = softmax(x)
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        assert np.allclose(log_softmax(x).data,
                           np.log(softmax(x).data))

    def test_softmax_gradcheck(self, rng):
        x0 = rng.standard_normal((3, 4))
        proj = rng.standard_normal((3, 4))

        def scalar():
            return float((softmax(Tensor(x0), axis=1).data * proj).sum())

        t = Tensor(x0, requires_grad=True)
        (softmax(t, axis=1) * Tensor(proj)).sum().backward()
        num = numeric_gradient(scalar, x0)
        np.testing.assert_allclose(t.grad, num, rtol=1e-5, atol=1e-6)

    def test_log_softmax_gradcheck(self, rng):
        x0 = rng.standard_normal((3, 4))
        proj = rng.standard_normal((3, 4))

        def scalar():
            return float((log_softmax(Tensor(x0), axis=1).data
                          * proj).sum())

        t = Tensor(x0, requires_grad=True)
        (log_softmax(t, axis=1) * Tensor(proj)).sum().backward()
        num = numeric_gradient(scalar, x0)
        np.testing.assert_allclose(t.grad, num, rtol=1e-5, atol=1e-6)


class TestGatherCols:
    def test_values(self):
        x = Tensor(np.arange(12.0).reshape(3, 4))
        out = gather_cols(x, np.array([0, 2, 3]))
        assert out.data.tolist() == [0.0, 6.0, 11.0]

    def test_gradient(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        cols = np.array([1, 1, 0])
        gather_cols(x, cols).sum().backward()
        expected = np.zeros((3, 4))
        expected[np.arange(3), cols] = 1.0
        np.testing.assert_allclose(x.grad, expected)


class TestCrossEntropy:
    def test_perfect_prediction(self):
        logits = Tensor(np.array([[50.0, 0.0], [0.0, 50.0]]))
        labels = np.array([0, 1])
        assert cross_entropy(logits, labels).item() < 1e-10

    def test_uniform_prediction(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.zeros(3, dtype=np.int64))

    def test_trains_classifier(self, rng):
        """Linear softmax classifier fits a separable 3-class problem."""
        from repro.nn import Adam, Linear
        x = rng.standard_normal((90, 2)) + \
            np.repeat(np.array([[0, 0], [5, 0], [0, 5]]), 30, axis=0)
        y = np.repeat(np.arange(3), 30)
        layer = Linear(2, 3, rng=rng)
        opt = Adam(layer.parameters(), lr=0.1)
        for _ in range(100):
            loss = cross_entropy(layer(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1
