"""Loss function and optimizer tests."""

import numpy as np
import pytest

from repro.nn import Adam, Parameter, SGD, Tensor, bce_with_logits


class TestBCEWithLogits:
    def test_value_matches_manual(self):
        s = np.array([0.5, -1.0, 2.0])
        y = np.array([1.0, 0.0, 1.0])
        expected = np.mean(np.maximum(s, 0) - s * y + np.log1p(np.exp(-np.abs(s))))
        loss = bce_with_logits(Tensor(s), y)
        assert loss.item() == pytest.approx(expected)

    def test_perfect_prediction_low_loss(self):
        s = np.array([50.0, -50.0])
        y = np.array([1.0, 0.0])
        assert bce_with_logits(Tensor(s), y).item() < 1e-10

    def test_gradient_is_sigmoid_minus_label(self):
        s = np.array([0.3, -0.7, 1.5])
        y = np.array([1.0, 0.0, 0.0])
        logits = Tensor(s, requires_grad=True)
        bce_with_logits(logits, y, reduction="sum").backward()
        expected = 1.0 / (1.0 + np.exp(-s)) - y
        np.testing.assert_allclose(logits.grad, expected, rtol=1e-12)

    def test_mean_reduction_scales_gradient(self):
        s = np.array([1.0, 1.0])
        logits = Tensor(s, requires_grad=True)
        bce_with_logits(logits, np.array([1.0, 1.0])).backward()
        expected = (1.0 / (1.0 + np.exp(-s)) - 1.0) / 2
        np.testing.assert_allclose(logits.grad, expected)

    def test_none_reduction(self):
        s = np.array([0.0, 0.0])
        loss = bce_with_logits(Tensor(s), np.array([1.0, 0.0]),
                               reduction="none")
        assert loss.shape == (2,)
        assert np.allclose(loss.data, np.log(2.0))

    def test_extreme_logits_stable(self):
        s = np.array([1000.0, -1000.0])
        loss = bce_with_logits(Tensor(s), np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor(np.zeros(2)), np.zeros(3))

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            bce_with_logits(Tensor(np.zeros(2)), np.zeros(2),
                            reduction="median")


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        assert p.data[0] == pytest.approx(-1.0)
        p.grad = np.array([1.0])
        opt.step()
        assert p.data[0] == pytest.approx(-1.0 - 1.9)

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.5, weight_decay=0.1).step()
        assert p.data[0] == pytest.approx(2.0 - 0.5 * 0.2)

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_first_step_magnitude(self):
        # Bias-corrected Adam's first step is ~lr regardless of grad scale.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1e-3])
        opt.step()
        assert p.data[0] == pytest.approx(-0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            p.grad = 2.0 * (p.data - 2.0)
            opt.step()
        assert p.data[0] == pytest.approx(2.0, abs=1e-3)

    def test_zero_grad_clears(self):
        p = Parameter(np.zeros(2))
        p.grad = np.ones(2)
        Adam([p]).zero_grad()
        assert p.grad is None

    def test_trains_model_end_to_end(self, rng):
        # Logistic regression on separable data must fit.
        from repro.nn import Linear, sigmoid
        x = rng.standard_normal((64, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.float64)
        layer = Linear(2, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(200):
            out = layer(Tensor(x)).reshape(-1)
            loss = bce_with_logits(out, y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1
