"""Execution-backend equivalence and lifecycle tests.

The contract under test: ``serial``, ``thread`` and ``process``
backends produce bit-identical TrainResults (accuracy, loss history)
and byte-identical CommMeter ledgers for the same seed, at 2 and 4
workers — the backend is an engine choice, never a semantics choice.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.frameworks import run_framework
from repro.distributed import (
    BACKEND_NAMES,
    DistributedScorer,
    ProcessBackend,
    RemoteGraphStore,
    SerialBackend,
    ThreadBackend,
    TrainConfig,
    make_backend,
)
from repro.graph import split_edges, synthetic_lp_graph
from repro.nn.models import build_model
from repro.partition import partition_graph

HAS_FORK = "fork" in mp.get_all_start_methods()


@pytest.fixture(scope="module")
def split():
    """One medium community graph shared by every equivalence case."""
    rng = np.random.default_rng(902)
    graph = synthetic_lp_graph(num_nodes=140, target_edges=520,
                               feature_dim=16, num_communities=4, rng=rng)
    return split_edges(graph, rng=rng)


def _train(split, backend, workers, seed, sync="model", framework="splpg",
           failure_prob=0.0):
    config = TrainConfig(hidden_dim=16, num_layers=2, fanouts=(5, 5),
                         epochs=2, batch_size=64, seed=seed, sync=sync,
                         backend=backend, observe=False,
                         worker_failure_prob=failure_prob)
    return run_framework(framework, split, workers, config,
                         rng=np.random.default_rng(seed))


def _fingerprint(result):
    """Everything that must match bit for bit across backends."""
    return (
        result.test.hits,
        result.test.auc,
        result.best_epoch,
        tuple(s.mean_loss for s in result.history),
        tuple(tuple(sorted(s.comm.to_dict().items()))
              for s in result.history),
        tuple(sorted(result.comm_total.to_dict().items())),
        result.dropped_contributions,
    )


class TestTrainingEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_thread_matches_serial(self, split, workers, seed):
        base = _train(split, "serial", workers, seed)
        other = _train(split, "thread", workers, seed)
        assert _fingerprint(other) == _fingerprint(base)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    @pytest.mark.parametrize("workers", [2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_process_matches_serial(self, split, workers, seed):
        base = _train(split, "serial", workers, seed)
        other = _train(split, "process", workers, seed)
        assert _fingerprint(other) == _fingerprint(base)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_grad_sync_equivalence(self, split):
        base = _train(split, "serial", 2, 0, sync="grad")
        for backend in ("thread", "process"):
            other = _train(split, backend, 2, 0, sync="grad")
            assert _fingerprint(other) == _fingerprint(base)

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_correction_framework_equivalence(self, split):
        """LLCG exercises the run_correction path on every backend."""
        base = _train(split, "serial", 2, 0, framework="llcg")
        for backend in ("thread", "process"):
            other = _train(split, backend, 2, 0, framework="llcg")
            assert _fingerprint(other) == _fingerprint(base)

    def test_failure_injection_equivalence(self, split):
        """Dropped contributions replay identically across backends."""
        base = _train(split, "serial", 2, 3, failure_prob=0.3)
        other = _train(split, "thread", 2, 3, failure_prob=0.3)
        assert base.dropped_contributions > 0
        assert _fingerprint(other) == _fingerprint(base)


class TestScorerEquivalence:
    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_scores_and_ledger_match(self, split):
        rng = np.random.default_rng(11)
        graph = split.train_graph
        part = partition_graph(graph, 3, rng=np.random.default_rng(1))
        model = build_model("sage", graph.feature_dim, 16, num_layers=2,
                            seed=0)
        pairs = np.stack([rng.integers(0, graph.num_nodes, 50),
                          rng.integers(0, graph.num_nodes, 50)], axis=1)
        results = {}
        for backend in BACKEND_NAMES:
            scorer = DistributedScorer(
                model, part, remote=RemoteGraphStore(graph), fanouts=(5, 5),
                rng=np.random.default_rng(3), backend=backend)
            results[backend] = scorer.score(pairs)
        base = results["serial"]
        for backend in ("thread", "process"):
            got = results[backend]
            assert np.array_equal(got.scores, base.scores)
            assert got.comm.to_dict() == base.comm.to_dict()
            assert got.pairs_per_worker == base.pairs_per_worker

    def test_unknown_backend_rejected(self, split):
        part = partition_graph(split.train_graph, 2,
                               rng=np.random.default_rng(1))
        model = build_model("sage", split.train_graph.feature_dim, 8,
                            num_layers=2, seed=0)
        with pytest.raises(ValueError, match="unknown backend"):
            DistributedScorer(model, part, backend="gpu")

    def test_summary_mentions_routing(self, split):
        part = partition_graph(split.train_graph, 2,
                               rng=np.random.default_rng(1))
        model = build_model("sage", split.train_graph.feature_dim, 8,
                            num_layers=2, seed=0)
        scorer = DistributedScorer(model, part,
                                   remote=RemoteGraphStore(split.train_graph),
                                   fanouts=(3, 3),
                                   rng=np.random.default_rng(0))
        res = scorer.score(np.array([[0, 1], [2, 3]]))
        text = res.summary()
        assert "pairs scored" in text and "communication" in text


class TestBackendFactoryAndConfig:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial", 4), SerialBackend)
        assert isinstance(make_backend("thread", 4), ThreadBackend)
        if HAS_FORK:
            assert isinstance(make_backend("process", 4), ProcessBackend)

    def test_make_backend_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cuda", 4)

    def test_single_worker_degrades_with_warning(self):
        with pytest.warns(RuntimeWarning, match="degrading to the serial"):
            backend = make_backend("process", 1)
        assert isinstance(backend, SerialBackend)
        assert not isinstance(backend, ProcessBackend)

    def test_config_validates_backend_name(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            TrainConfig(fanouts=(5, 5), num_layers=2, backend="mpi")

    def test_config_single_worker_process_degrades(self):
        with pytest.warns(RuntimeWarning, match="degrades"):
            config = TrainConfig(fanouts=(5, 5), num_layers=2,
                                 backend="process", num_workers=1)
        assert config.backend == "serial"

    def test_config_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            TrainConfig(fanouts=(5, 5), num_layers=2, num_workers=-1)

    def test_trainer_rejects_worker_partition_mismatch(self, split):
        from repro.core.frameworks import FRAMEWORKS, build_trainer

        config = TrainConfig(hidden_dim=8, num_layers=2, fanouts=(3, 3),
                             epochs=1, num_workers=3, observe=False)
        with pytest.raises(ValueError, match="does not match"):
            build_trainer(FRAMEWORKS["psgd_pa"], split, 2, config,
                          rng=np.random.default_rng(0))


class TestObservedParallelRuns:
    def test_pool_metrics_recorded_for_thread_backend(self, split):
        config = TrainConfig(hidden_dim=12, num_layers=2, fanouts=(4, 4),
                             epochs=1, batch_size=64, seed=0,
                             backend="thread", observe=True)
        result = run_framework("psgd_pa", split, 2, config,
                               rng=np.random.default_rng(0))
        metrics = result.report.metrics
        assert metrics["pool.rounds"]["value"] > 0
        assert metrics["pool.tasks"]["value"] > 0
        assert metrics["pool.workers"]["value"] == 2
        assert "train.wall_clock_s" in metrics

    def test_no_pool_metrics_for_serial(self, split):
        config = TrainConfig(hidden_dim=12, num_layers=2, fanouts=(4, 4),
                             epochs=1, batch_size=64, seed=0,
                             backend="serial", observe=True)
        result = run_framework("psgd_pa", split, 2, config,
                               rng=np.random.default_rng(0))
        assert "pool.rounds" not in result.report.metrics
        assert "train.wall_clock_s" not in result.report.metrics


class TestIdempotentClose:
    class _StubTrainer:
        def __init__(self, n: int = 2):
            self.workers = [object()] * n

    @pytest.mark.parametrize("factory", [SerialBackend,
                                         lambda: ThreadBackend(2)])
    def test_close_shuts_down_exactly_once(self, factory):
        backend = factory()
        calls = []
        real_shutdown = backend.shutdown
        backend.shutdown = lambda: (calls.append(1), real_shutdown())
        backend.bind(self._StubTrainer())
        backend.close()
        backend.close()
        backend.close()
        assert len(calls) == 1

    def test_rebind_rearms_close(self):
        backend = SerialBackend()
        backend.bind(self._StubTrainer())
        backend.close()
        backend.bind(self._StubTrainer())
        assert backend.trainer is not None
        backend.close()
        assert backend.trainer is None

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_process_backend_survives_double_shutdown(self, split):
        """train() closes its backend in a finally; closing again by
        hand must be a no-op, not a crash on dead pipes."""
        from repro.core.frameworks import FRAMEWORKS, build_trainer

        config = TrainConfig(hidden_dim=12, num_layers=2, fanouts=(4, 4),
                             epochs=1, batch_size=64, seed=0,
                             backend="process")
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], split, 2, config,
                                rng=np.random.default_rng(0))
        trainer.train()
        backend = trainer.backend
        assert isinstance(backend, ProcessBackend)
        backend.close()
        backend.close()
