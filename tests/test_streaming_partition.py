"""LDG streaming partitioner."""

import numpy as np
import pytest

from repro.graph import synthetic_lp_graph
from repro.partition import (
    edge_cut,
    ldg_partition,
    metis_partition,
    partition_balance,
    partition_graph,
    random_tma_partition,
)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(3)
    return synthetic_lp_graph(500, 2200, feature_dim=4,
                              num_communities=8, rng=rng)


class TestLDG:
    def test_covers_all_nodes(self, graph, rng):
        a = ldg_partition(graph, 4, rng=rng)
        assert a.shape == (graph.num_nodes,)
        assert a.min() >= 0 and a.max() < 4

    def test_respects_capacity(self, graph, rng):
        a = ldg_partition(graph, 4, rng=rng, capacity_factor=1.1)
        assert partition_balance(a, 4) <= 1.1 + 1e-9

    def test_cut_between_metis_and_random(self, graph):
        rng = np.random.default_rng(7)
        cut_metis = edge_cut(graph, metis_partition(graph, 4, rng=rng))
        cut_ldg = edge_cut(graph, ldg_partition(graph, 4, rng=rng))
        cut_random = edge_cut(graph,
                              random_tma_partition(graph, 4, rng=rng))
        assert cut_metis < cut_ldg < cut_random

    def test_k1_trivial(self, graph, rng):
        assert np.all(ldg_partition(graph, 1, rng=rng) == 0)

    def test_invalid_k(self, graph, rng):
        with pytest.raises(ValueError):
            ldg_partition(graph, 0, rng=rng)

    @pytest.mark.parametrize("order", ["random", "bfs", "natural"])
    def test_orders(self, graph, rng, order):
        a = ldg_partition(graph, 4, rng=rng, order=order)
        assert np.unique(a).size == 4

    def test_unknown_order(self, graph, rng):
        with pytest.raises(ValueError):
            ldg_partition(graph, 4, rng=rng, order="dfs")

    def test_registered_strategy(self, graph, rng):
        pg = partition_graph(graph, 4, strategy="ldg", rng=rng)
        assert pg.num_parts == 4
        assert len(pg.parts) == 4

    def test_deterministic_given_rng(self, graph):
        a = ldg_partition(graph, 4, rng=np.random.default_rng(5))
        b = ldg_partition(graph, 4, rng=np.random.default_rng(5))
        assert np.array_equal(a, b)
