"""Edge cases of the epoch-timeline cost model."""

import pytest

from repro.distributed import (
    CommRecord,
    HardwareModel,
    estimate_epoch_time,
)


class TestHardwareModelGuards:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth_gbps"):
            HardwareModel(bandwidth_gbps=0.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth_gbps"):
            HardwareModel(bandwidth_gbps=-1.0)

    def test_zero_throughput_rejected(self):
        with pytest.raises(ValueError, match="edges_per_second"):
            HardwareModel(edges_per_second=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="request_latency_s"):
            HardwareModel(request_latency_s=-1e-6)
        with pytest.raises(ValueError, match="sync_latency_s"):
            HardwareModel(sync_latency_s=-1e-6)

    def test_zero_latency_allowed(self):
        hw = HardwareModel(request_latency_s=0.0, sync_latency_s=0.0)
        assert hw.request_latency_s == 0.0

    def test_bytes_per_second(self):
        hw = HardwareModel(bandwidth_gbps=8.0)
        assert hw.bytes_per_second == pytest.approx(1e9)


class TestZeroWorker:
    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            estimate_epoch_time(CommRecord(), num_workers=0,
                                edges_processed=0, rounds=0)

    def test_single_worker_no_comm(self):
        # One worker, nothing fetched, nothing synced: pure compute.
        hw = HardwareModel(edges_per_second=1e6, sync_latency_s=0.0)
        t = estimate_epoch_time(CommRecord(), num_workers=1,
                                edges_processed=1e6, rounds=0,
                                hardware=hw)
        assert t.compute_s == pytest.approx(1.0)
        assert t.network_s == 0.0
        assert t.sync_s == 0.0


class TestStragglerRounds:
    HW = HardwareModel(edges_per_second=1e6, request_latency_s=0.0,
                       sync_latency_s=0.0)

    def test_straggler_sets_compute_pace(self):
        # Balanced mean would be (3e6 + 1e6) / 2 = 2e6 edges -> 2 s;
        # the lock-step barrier instead waits for the 3e6-edge worker.
        t = estimate_epoch_time(
            CommRecord(), num_workers=2, edges_processed=4e6, rounds=4,
            hardware=self.HW, edges_per_worker=[3e6, 1e6])
        assert t.compute_s == pytest.approx(3.0)

    def test_balanced_workers_match_mean(self):
        balanced = estimate_epoch_time(
            CommRecord(), num_workers=2, edges_processed=4e6, rounds=4,
            hardware=self.HW, edges_per_worker=[2e6, 2e6])
        mean = estimate_epoch_time(
            CommRecord(), num_workers=2, edges_processed=4e6, rounds=4,
            hardware=self.HW)
        assert balanced.compute_s == pytest.approx(mean.compute_s)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="edges_per_worker"):
            estimate_epoch_time(
                CommRecord(), num_workers=3, edges_processed=1e6,
                rounds=1, hardware=self.HW, edges_per_worker=[1e6, 1e6])

    def test_negative_entry_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            estimate_epoch_time(
                CommRecord(), num_workers=2, edges_processed=1e6,
                rounds=1, hardware=self.HW, edges_per_worker=[1e6, -1.0])

    def test_straggler_never_faster_than_mean(self):
        for split_edges in ([4e6, 0.0], [2.5e6, 1.5e6], [2e6, 2e6]):
            straggler = estimate_epoch_time(
                CommRecord(), num_workers=2, edges_processed=4e6,
                rounds=4, hardware=self.HW, edges_per_worker=split_edges)
            mean = estimate_epoch_time(
                CommRecord(), num_workers=2, edges_processed=4e6,
                rounds=4, hardware=self.HW)
            assert straggler.compute_s >= mean.compute_s - 1e-12
