"""Extension negative samplers: degree-weighted and in-batch."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.sampling import (
    DegreeWeightedNegativeSampler,
    EdgeMembership,
    InBatchNegativeSampler,
)


@pytest.fixture
def hub_graph():
    """Node 0 is a hub (degree 10); 11..20 form a path (low degree)."""
    edges = [[0, i] for i in range(1, 11)]
    edges += [[i, i + 1] for i in range(11, 20)]
    return Graph.from_edges(21, edges)


class TestDegreeWeighted:
    def test_avoids_edges(self, featured_graph, rng):
        sampler = DegreeWeightedNegativeSampler(featured_graph, rng=rng)
        sources = featured_graph.edge_list()[:50, 0]
        pairs = sampler.sample(sources)
        assert not EdgeMembership(featured_graph).contains_many(pairs).any()

    def test_prefers_high_degree_destinations(self, hub_graph):
        rng = np.random.default_rng(0)
        # sources from the far path so the hub is a valid negative
        sampler = DegreeWeightedNegativeSampler(hub_graph, beta=1.0,
                                                rng=rng)
        draws = sampler.sample(np.full(4000, 20, dtype=np.int64))
        hub_rate = np.mean(draws[:, 1] == 0)
        # hub has degree 10 of total degree 38 -> ~26% mass, far above
        # the uniform 1/21.
        assert hub_rate > 0.15

    def test_beta_zero_is_uniformish(self, hub_graph):
        rng = np.random.default_rng(1)
        sampler = DegreeWeightedNegativeSampler(hub_graph, beta=0.0,
                                                rng=rng)
        draws = sampler.sample(np.full(6000, 20, dtype=np.int64))
        hub_rate = np.mean(draws[:, 1] == 0)
        assert hub_rate < 0.12  # ~1/21 plus rejection effects

    def test_candidate_restriction(self, featured_graph, rng):
        candidates = np.arange(10, 30)
        sampler = DegreeWeightedNegativeSampler(
            featured_graph, candidates=candidates, rng=rng)
        pairs = sampler.sample(np.zeros(40, dtype=np.int64))
        assert np.all((pairs[:, 1] >= 10) & (pairs[:, 1] < 30))

    def test_empty_candidates_rejected(self, featured_graph, rng):
        with pytest.raises(ValueError):
            DegreeWeightedNegativeSampler(
                featured_graph, candidates=np.array([], dtype=np.int64))


class TestInBatch:
    def test_sources_preserved(self, featured_graph, rng):
        sampler = InBatchNegativeSampler(featured_graph, rng=rng)
        batch = featured_graph.edge_list()[:32]
        pairs = sampler.sample(batch)
        assert np.array_equal(pairs[:, 0], batch[:, 0])

    def test_no_positives_leak(self, featured_graph, rng):
        sampler = InBatchNegativeSampler(featured_graph, rng=rng)
        batch = featured_graph.edge_list()[:64]
        pairs = sampler.sample(batch)
        assert not EdgeMembership(featured_graph).contains_many(pairs).any()

    def test_destinations_mostly_from_batch(self, featured_graph, rng):
        sampler = InBatchNegativeSampler(featured_graph, rng=rng)
        batch = featured_graph.edge_list()[:64]
        pairs = sampler.sample(batch)
        batch_dst = set(batch[:, 1].tolist())
        in_batch = np.mean([int(d) in batch_dst for d in pairs[:, 1]])
        assert in_batch > 0.8
