"""Synthetic generators, named datasets, and edge splits."""

import numpy as np
import pytest

from repro.graph import (
    DATASET_NAMES,
    TABLE_I,
    EdgeSplit,
    chung_lu_graph,
    community_graph,
    dataset_spec,
    latent_features,
    load_dataset,
    powerlaw_expected_degrees,
    sample_non_edges,
    split_edges,
    synthetic_lp_graph,
)
from repro.sampling import EdgeMembership


class TestPowerlawDegrees:
    def test_total_degree_scaled(self, rng):
        w = powerlaw_expected_degrees(500, 2000, rng=rng)
        assert w.sum() == pytest.approx(4000.0)

    def test_skewed(self, rng):
        w = powerlaw_expected_degrees(2000, 8000, exponent=2.2, rng=rng)
        assert w.max() / np.median(w) > 5

    def test_invalid_exponent(self, rng):
        with pytest.raises(ValueError):
            powerlaw_expected_degrees(10, 20, exponent=1.0, rng=rng)

    def test_invalid_nodes(self, rng):
        with pytest.raises(ValueError):
            powerlaw_expected_degrees(0, 20, rng=rng)


class TestChungLu:
    def test_edge_count_near_target(self, rng):
        g = chung_lu_graph(500, 2000, rng=rng)
        assert 0.8 * 2000 <= g.num_edges <= 2000

    def test_no_self_loops(self, rng):
        g = chung_lu_graph(100, 300, rng=rng)
        edges = g.edge_list()
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_degree_skew(self, rng):
        g = chung_lu_graph(1000, 5000, exponent=2.1, rng=rng)
        deg = g.degrees
        assert deg.max() > 4 * np.median(deg[deg > 0])


class TestCommunityGraph:
    def test_returns_assignment(self, rng):
        g, comm = community_graph(300, 1200, num_communities=6, rng=rng)
        assert comm.shape == (300,)
        assert comm.max() < 6

    def test_intra_fraction_respected(self, rng):
        g, comm = community_graph(400, 2000, num_communities=4,
                                  intra_fraction=0.9, rng=rng)
        edges = g.edge_list()
        intra = np.mean(comm[edges[:, 0]] == comm[edges[:, 1]])
        assert intra > 0.7

    def test_zero_intra_fraction(self, rng):
        g, comm = community_graph(200, 600, num_communities=4,
                                  intra_fraction=0.0, rng=rng)
        edges = g.edge_list()
        assert np.all(comm[edges[:, 0]] != comm[edges[:, 1]])

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError):
            community_graph(100, 200, intra_fraction=1.5, rng=rng)


class TestLatentFeatures:
    def test_shape_dtype(self, rng):
        comm = rng.integers(0, 4, size=50)
        f = latent_features(50, 16, comm, rng=rng)
        assert f.shape == (50, 16)
        assert f.dtype == np.float32

    def test_same_community_closer(self, rng):
        comm = np.repeat(np.arange(4), 25)
        f = latent_features(100, 32, comm, rng=rng, signal=2.0, noise=0.3)
        same = np.linalg.norm(f[0] - f[1])
        diff = np.linalg.norm(f[0] - f[99])
        assert same < diff


class TestSyntheticLPGraph:
    def test_has_features(self, rng):
        g = synthetic_lp_graph(200, 800, feature_dim=12, rng=rng)
        assert g.feature_dim == 12


class TestDatasets:
    def test_all_names_present(self):
        assert len(DATASET_NAMES) == 9
        assert "cora" in DATASET_NAMES and "ppa" in DATASET_NAMES

    def test_table1_statistics(self):
        spec = dataset_spec("pubmed")
        assert spec.num_nodes == 19_717
        assert spec.num_edges == 88_651
        assert spec.feature_dim == 500

    def test_case_insensitive(self):
        assert dataset_spec("Cora") is TABLE_I["cora"]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            dataset_spec("enron")

    def test_scaling(self):
        g = load_dataset("cora", scale=0.1, feature_dim=16)
        spec = dataset_spec("cora")
        assert abs(g.num_nodes - spec.num_nodes * 0.1) < 10
        assert g.feature_dim == 16

    def test_deterministic(self):
        a = load_dataset("citeseer", scale=0.05, feature_dim=8)
        b = load_dataset("citeseer", scale=0.05, feature_dim=8)
        assert np.array_equal(a.edge_list(), b.edge_list())
        assert np.allclose(a.features, b.features)

    def test_different_names_different_graphs(self):
        a = load_dataset("cora", scale=0.05, feature_dim=8)
        b = load_dataset("citeseer", scale=0.05, feature_dim=8)
        assert a.num_nodes != b.num_nodes or \
            not np.array_equal(a.edge_list(), b.edge_list())

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale=0.0)

    def test_full_feature_dim_default(self):
        g = load_dataset("cora", scale=0.02)
        assert g.feature_dim == dataset_spec("cora").feature_dim


class TestSplits:
    def test_fractions(self, featured_graph, rng):
        split = split_edges(featured_graph, rng=rng)
        m = featured_graph.num_edges
        assert split.train_pos.shape[0] == pytest.approx(0.8 * m, abs=2)
        assert split.val_pos.shape[0] == pytest.approx(0.1 * m, abs=2)

    def test_disjoint_positives(self, featured_graph, rng):
        split = split_edges(featured_graph, rng=rng)
        def keys(e):
            lo = np.minimum(e[:, 0], e[:, 1])
            hi = np.maximum(e[:, 0], e[:, 1])
            return set((lo * featured_graph.num_nodes + hi).tolist())
        k_train, k_val, k_test = map(keys, (split.train_pos, split.val_pos,
                                            split.test_pos))
        assert not (k_train & k_val) and not (k_train & k_test)
        assert not (k_val & k_test)
        assert len(k_train | k_val | k_test) == featured_graph.num_edges

    def test_train_graph_has_only_train_edges(self, featured_graph, rng):
        split = split_edges(featured_graph, rng=rng)
        assert split.train_graph.num_edges == split.train_pos.shape[0]
        assert split.train_graph.num_nodes == featured_graph.num_nodes

    def test_negative_ratio(self, featured_graph, rng):
        split = split_edges(featured_graph, neg_ratio=3, rng=rng)
        assert split.val_neg.shape[0] == 3 * split.val_pos.shape[0]
        assert split.test_neg.shape[0] == 3 * split.test_pos.shape[0]

    def test_negatives_are_non_edges(self, featured_graph, rng):
        split = split_edges(featured_graph, rng=rng)
        membership = EdgeMembership(featured_graph)
        assert not membership.contains_many(split.val_neg).any()
        assert not membership.contains_many(split.test_neg).any()

    def test_val_test_negatives_disjoint(self, featured_graph, rng):
        split = split_edges(featured_graph, rng=rng)
        n = featured_graph.num_nodes
        def keys(e):
            lo = np.minimum(e[:, 0], e[:, 1])
            hi = np.maximum(e[:, 0], e[:, 1])
            return set((lo * n + hi).tolist())
        assert not (keys(split.val_neg) & keys(split.test_neg))

    def test_invalid_fractions(self, featured_graph, rng):
        with pytest.raises(ValueError):
            split_edges(featured_graph, train_frac=0.9, val_frac=0.2, rng=rng)
        with pytest.raises(ValueError):
            split_edges(featured_graph, train_frac=0.0, rng=rng)

    def test_tiny_graph_rejected(self, rng):
        from repro.graph import Graph
        g = Graph.from_edges(3, [[0, 1]])
        with pytest.raises(ValueError):
            split_edges(g, rng=rng)


class TestSampleNonEdges:
    def test_count_and_validity(self, featured_graph, rng):
        neg = sample_non_edges(featured_graph, 50, rng=rng)
        assert neg.shape == (50, 2)
        membership = EdgeMembership(featured_graph)
        assert not membership.contains_many(neg).any()

    def test_distinct(self, featured_graph, rng):
        neg = sample_non_edges(featured_graph, 100, rng=rng)
        n = featured_graph.num_nodes
        keys = neg[:, 0] * n + neg[:, 1]
        assert np.unique(keys).size == 100

    def test_exclusion(self, featured_graph, rng):
        first = sample_non_edges(featured_graph, 40, rng=rng)
        second = sample_non_edges(featured_graph, 40, rng=rng, exclude=first)
        n = featured_graph.num_nodes
        k1 = set((first[:, 0] * n + first[:, 1]).tolist())
        k2 = set((second[:, 0] * n + second[:, 1]).tolist())
        assert not (k1 & k2)

    def test_impossible_count_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError):
            sample_non_edges(triangle_graph, 10, rng=rng)


class TestSplitConventions:
    def test_dgl_convention(self):
        from repro.graph import split_convention
        conv = split_convention("pubmed")
        assert conv["train_frac"] == 0.8
        assert conv["hits_k"] == 100

    def test_ogb_conventions(self):
        from repro.graph import split_convention
        assert split_convention("collab")["hits_k"] == 50
        assert split_convention("collab")["train_frac"] == 0.92
        assert split_convention("ppa")["train_frac"] == 0.90

    def test_load_dataset_split(self):
        from repro.graph import load_dataset_split
        split, k = load_dataset_split("cora", scale=0.08, feature_dim=8)
        assert k == 100
        m = (split.train_pos.shape[0] + split.val_pos.shape[0]
             + split.test_pos.shape[0])
        assert split.train_pos.shape[0] / m == pytest.approx(0.8, abs=0.02)

    def test_load_dataset_split_deterministic(self):
        from repro.graph import load_dataset_split
        a, _ = load_dataset_split("cora", scale=0.08, feature_dim=8)
        b, _ = load_dataset_split("cora", scale=0.08, feature_dim=8)
        assert np.array_equal(a.train_pos, b.train_pos)
        assert np.array_equal(a.test_neg, b.test_neg)
