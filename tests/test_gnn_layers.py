"""GNN convolution layers: shapes, semantics and gradient flow."""

import numpy as np
import pytest

from repro.nn import GATConv, GATv2Conv, GCNConv, SAGEConv, Tensor
from repro.sampling import Block

from conftest import numeric_gradient


def make_block(num_src=5, num_dst=2, edges=((2, 0), (3, 0), (4, 1)),
               weights=None):
    """Small bipartite block: src rows 0..num_src-1; first num_dst are
    the destination nodes themselves."""
    edge_src = np.array([e[0] for e in edges])
    edge_dst = np.array([e[1] for e in edges])
    if weights is None:
        weights = np.ones(len(edges))
    return Block(
        src_nodes=np.arange(num_src, dtype=np.int64),
        num_dst=num_dst,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_weight=np.asarray(weights, dtype=np.float64),
    )


@pytest.fixture(params=["gcn", "sage", "gat", "gatv2"])
def conv_factory(request, rng):
    kinds = {
        "gcn": lambda i, o: GCNConv(i, o, rng=rng),
        "sage": lambda i, o: SAGEConv(i, o, rng=rng),
        "gat": lambda i, o: GATConv(i, o, rng=rng),
        "gatv2": lambda i, o: GATv2Conv(i, o, rng=rng),
    }
    return kinds[request.param]


class TestShapesAndGrads:
    def test_output_shape(self, conv_factory, rng):
        conv = conv_factory(4, 6)
        block = make_block()
        out = conv(block, Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (2, 6)

    def test_gradients_reach_all_params(self, conv_factory, rng):
        conv = conv_factory(3, 3)
        block = make_block()
        h = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        conv(block, h).sum().backward()
        for p in conv.parameters():
            assert p.grad is not None
        assert h.grad is not None

    def test_gradcheck_input(self, conv_factory, rng):
        conv = conv_factory(3, 2)
        block = make_block()
        x0 = rng.standard_normal((5, 3))
        proj = rng.standard_normal((2, 2))

        def scalar():
            return float((conv(block, Tensor(x0)).data * proj).sum())

        h = Tensor(x0, requires_grad=True)
        out = conv(block, h)
        (out * Tensor(proj)).sum().backward()
        num = numeric_gradient(scalar, x0)
        np.testing.assert_allclose(h.grad, num, rtol=1e-4, atol=1e-5)


class TestGCNSemantics:
    def test_isolated_dst_keeps_self(self, rng):
        """A destination with no in-edges reduces to a Linear of its own
        embedding (self-loop term)."""
        conv = GCNConv(2, 2, rng=rng)
        block = make_block(num_src=2, num_dst=2, edges=())
        h = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = conv(block, Tensor(h))
        expected = conv.linear(Tensor(h)).data
        assert np.allclose(out.data, expected)

    def test_edge_weight_scales_message(self, rng):
        conv = GCNConv(1, 1, rng=rng)
        h = np.array([[0.0], [10.0]])
        light = make_block(num_src=2, num_dst=1, edges=((1, 0),),
                           weights=[0.1])
        heavy = make_block(num_src=2, num_dst=1, edges=((1, 0),),
                           weights=[10.0])
        out_light = conv(light, Tensor(h)).data[0, 0]
        out_heavy = conv(heavy, Tensor(h)).data[0, 0]
        # Weighted-mean aggregation pulls toward the neighbor as weight
        # grows (for positive weight on the neighbor's value).
        ref = conv(make_block(num_src=2, num_dst=1, edges=((1, 0),)),
                   Tensor(h)).data[0, 0]
        assert abs(out_heavy - conv.linear(Tensor([[10.0]])).data[0, 0]) < \
            abs(ref - conv.linear(Tensor([[10.0]])).data[0, 0])
        assert out_light != out_heavy


class TestSAGESemantics:
    def test_mean_aggregation(self, rng):
        conv = SAGEConv(1, 1, rng=rng)
        # two neighbors with values 2 and 4 -> mean 3
        block = make_block(num_src=3, num_dst=1, edges=((1, 0), (2, 0)))
        h = np.array([[0.0], [2.0], [4.0]])
        out = conv(block, Tensor(h)).data
        w_self = conv.fc_self.weight.data[0, 0]
        b = conv.fc_self.bias.data[0]
        w_neigh = conv.fc_neigh.weight.data[0, 0]
        assert out[0, 0] == pytest.approx(0.0 * w_self + b + 3.0 * w_neigh)

    def test_weighted_mean(self, rng):
        conv = SAGEConv(1, 1, rng=rng)
        block = make_block(num_src=3, num_dst=1, edges=((1, 0), (2, 0)),
                           weights=[3.0, 1.0])
        h = np.array([[0.0], [2.0], [4.0]])
        out = conv(block, Tensor(h)).data
        weighted_mean = (3.0 * 2.0 + 1.0 * 4.0) / 4.0
        w_neigh = conv.fc_neigh.weight.data[0, 0]
        b = conv.fc_self.bias.data[0]
        assert out[0, 0] == pytest.approx(b + weighted_mean * w_neigh)

    def test_no_neighbors_zero_aggregate(self, rng):
        conv = SAGEConv(1, 1, rng=rng)
        block = make_block(num_src=1, num_dst=1, edges=())
        h = np.array([[5.0]])
        out = conv(block, Tensor(h)).data
        expected = conv.fc_self(Tensor(h)).data
        assert np.allclose(out, expected)


class TestAttention:
    @pytest.mark.parametrize("cls", [GATConv, GATv2Conv])
    def test_attention_is_convex_combination(self, cls, rng):
        """With a single head, the aggregated message lies in the convex
        hull of the projected neighbor embeddings."""
        conv = cls(2, 2, rng=rng)
        block = make_block(num_src=4, num_dst=1,
                           edges=((1, 0), (2, 0), (3, 0)))
        h = rng.standard_normal((4, 2))
        out = conv(block, Tensor(h)).data[0]
        if cls is GATConv:
            z = conv.fc[0](Tensor(h)).data[1:]
        else:
            z = conv.fc_l[0](Tensor(h)).data[1:]
        lo, hi = z.min(axis=0), z.max(axis=0)
        assert np.all(out >= lo - 1e-9) and np.all(out <= hi + 1e-9)

    @pytest.mark.parametrize("cls", [GATConv, GATv2Conv])
    def test_multihead_concat(self, cls, rng):
        conv = cls(4, 6, num_heads=3, rng=rng)
        block = make_block()
        out = conv(block, Tensor(rng.standard_normal((5, 4))))
        assert out.shape == (2, 6)

    @pytest.mark.parametrize("cls", [GATConv, GATv2Conv])
    def test_heads_must_divide(self, cls, rng):
        with pytest.raises(ValueError):
            cls(4, 5, num_heads=2, rng=rng)

    @pytest.mark.parametrize("cls", [GATConv, GATv2Conv])
    def test_zero_weight_edge_ignored(self, cls, rng):
        """An edge with near-zero sparsifier weight gets (log-prior)
        attention ~0, so the output matches removing the edge."""
        conv = cls(2, 2, rng=rng)
        h = rng.standard_normal((4, 2))
        with_zero = make_block(num_src=4, num_dst=1,
                               edges=((1, 0), (2, 0)),
                               weights=[1.0, 1e-300])
        without = make_block(num_src=4, num_dst=1, edges=((1, 0),))
        out1 = conv(with_zero, Tensor(h)).data
        out2 = conv(without, Tensor(h)).data
        np.testing.assert_allclose(out1, out2, atol=1e-6)
