"""Communication meter arithmetic."""

import pytest

from repro.distributed import (
    BYTES_PER_EDGE,
    BYTES_PER_EDGE_WEIGHT,
    BYTES_PER_NODE_ID,
    FEATURE_ITEMSIZE,
    GB,
    CommMeter,
    CommRecord,
)


class TestCommRecord:
    def test_graph_data_excludes_sync(self):
        rec = CommRecord(feature_bytes=10, structure_bytes=5, sync_bytes=100)
        assert rec.graph_data_bytes == 15
        assert rec.total_bytes == 115

    def test_iadd(self):
        a = CommRecord(1, 2, 3)
        a += CommRecord(10, 20, 30)
        assert (a.feature_bytes, a.structure_bytes, a.sync_bytes) == \
            (11, 22, 33)


class TestCommMeter:
    def test_charge_features(self):
        m = CommMeter()
        m.charge_features(num_nodes=10, feature_dim=8)
        assert m.current.feature_bytes == 10 * 8 * FEATURE_ITEMSIZE

    def test_charge_structure_unweighted(self):
        m = CommMeter()
        m.charge_structure(num_edges=5, num_queried_nodes=3)
        assert m.current.structure_bytes == \
            5 * BYTES_PER_EDGE + 3 * BYTES_PER_NODE_ID

    def test_charge_structure_weighted(self):
        m = CommMeter()
        m.charge_structure(num_edges=5, num_queried_nodes=0, weighted=True)
        assert m.current.structure_bytes == \
            5 * (BYTES_PER_EDGE + BYTES_PER_EDGE_WEIGHT)

    def test_charge_sync_separate_bucket(self):
        m = CommMeter()
        m.charge_sync(1000)
        assert m.current.graph_data_bytes == 0
        assert m.current.sync_bytes == 1000

    def test_epoch_rollover(self):
        m = CommMeter()
        m.charge_features(1, 1)
        rec = m.end_epoch()
        assert rec.feature_bytes == FEATURE_ITEMSIZE
        assert m.current.feature_bytes == 0
        assert len(m.epochs) == 1

    def test_total_includes_open_epoch(self):
        m = CommMeter()
        m.charge_features(1, 1)
        m.end_epoch()
        m.charge_features(2, 1)
        assert m.total().feature_bytes == 3 * FEATURE_ITEMSIZE

    def test_gb_per_epoch(self):
        m = CommMeter()
        m.charge_features(1, 1)
        m.end_epoch()
        m.charge_features(3, 1)
        m.end_epoch()
        per_epoch = m.graph_data_gb_per_epoch()
        assert per_epoch[0] == pytest.approx(4 / GB)
        assert per_epoch[1] == pytest.approx(12 / GB)
        assert m.mean_graph_data_gb() == pytest.approx(8 / GB)

    def test_mean_without_closed_epoch(self):
        m = CommMeter()
        m.charge_features(1, 1)
        assert m.mean_graph_data_gb() == pytest.approx(4 / GB)
