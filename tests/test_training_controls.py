"""Early stopping, LR decay and the TrainResult summary."""

import numpy as np
import pytest

from repro import TrainConfig, train_centralized
from repro.core import FRAMEWORKS, build_trainer


def config(**overrides):
    base = dict(gnn_type="sage", hidden_dim=16, num_layers=2,
                fanouts=(5, 3), batch_size=64, epochs=8, hits_k=20,
                eval_every=1, seed=3)
    base.update(overrides)
    return TrainConfig(**base)


class TestValidation:
    def test_patience_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(patience=-1)

    def test_lr_decay_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=0.0)
        with pytest.raises(ValueError):
            TrainConfig(lr_decay=1.5)
        with pytest.raises(ValueError):
            TrainConfig(lr_decay_every=0)

    def test_negative_sampler_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(negative_sampler="hard")

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(sync_topology="mesh")


class TestEarlyStopping:
    def test_stops_early_distributed(self, small_split):
        cfg = config(patience=1, epochs=12)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        result = trainer.train()
        # With patience 1 and per-epoch eval, a noisy validation curve
        # triggers the stop long before 12 epochs.
        assert len(result.history) < 12

    def test_stops_early_centralized(self, small_split):
        cfg = config(patience=1, epochs=12)
        result = train_centralized(small_split, cfg)
        assert len(result.history) < 12

    def test_no_patience_runs_all_epochs(self, small_split):
        cfg = config(patience=0, epochs=4)
        result = train_centralized(small_split, cfg)
        assert len(result.history) == 4

    def test_best_state_still_selected(self, small_split):
        cfg = config(patience=2, epochs=10)
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        result = trainer.train()
        assert 0 <= result.best_epoch < len(result.history)


class TestLRDecay:
    def test_distributed_lr_decays(self, small_split):
        cfg = config(lr_decay=0.5, lr_decay_every=1, epochs=3,
                     eval_every=3)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        trainer.train()
        for worker in trainer.workers:
            assert worker.optimizer.lr == pytest.approx(cfg.lr * 0.125)

    def test_decay_every_respected(self, small_split):
        cfg = config(lr_decay=0.5, lr_decay_every=2, epochs=4,
                     eval_every=4)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        trainer.train()
        for worker in trainer.workers:
            assert worker.optimizer.lr == pytest.approx(cfg.lr * 0.25)


class TestSummary:
    def test_summary_contents(self, small_split):
        cfg = config(epochs=2, eval_every=2)
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        result = trainer.train()
        text = result.summary()
        assert "framework: splpg" in text
        assert "workers:   2" in text
        assert "features:" in text and "sync:" in text

    def test_summary_reports_drops(self, small_split):
        cfg = config(epochs=2, eval_every=2, worker_failure_prob=0.5)
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 2,
                                cfg, rng=np.random.default_rng(0))
        result = trainer.train()
        if result.dropped_contributions:
            assert "dropped worker contributions" in result.summary()
