"""Observability subsystem: tracer, metrics, RunReport, acceptance.

Covers the subsystem's acceptance criteria: a 2-worker observed run
whose report byte totals equal the CommRecord exactly, a Chrome-trace
export that is valid JSON with correctly nested spans, bit-identical
reports across same-seed runs, and observe-off runs identical to
uninstrumented training.
"""

import json

import numpy as np
import pytest

from repro import TrainConfig, run_framework, split_edges
from repro.graph import synthetic_lp_graph
from repro.obs import (
    LOSS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunObserver,
    RunReport,
    Tracer,
    chrome_trace,
)
from repro.obs.__main__ import main as obs_cli


# -- primitives -----------------------------------------------------------


class TestTracer:
    def test_nested_spans_and_clock(self):
        tr = Tracer()
        with tr.span("outer", worker=0):
            tr.advance(1.0)
            with tr.span("inner"):
                tr.advance(0.5)
        assert tr.now_s == pytest.approx(1.5)
        [outer] = tr.roots
        assert outer.name == "outer"
        assert outer.duration_s == pytest.approx(1.5)
        [inner] = outer.children
        assert inner.start_s == pytest.approx(1.0)
        assert inner.duration_s == pytest.approx(0.5)
        assert outer.self_s == pytest.approx(1.0)

    def test_negative_advance_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.advance(-1.0)

    def test_span_attrs(self):
        tr = Tracer()
        with tr.span("s", worker=3, nbytes=128) as sp:
            sp.attrs["late"] = True
        assert tr.roots[0].attrs == {"worker": 3, "nbytes": 128,
                                     "late": True}

    def test_chrome_trace_format(self):
        tr = Tracer()
        with tr.span("epoch"):
            with tr.span("batch", worker=1):
                tr.advance(0.25)
        payload = chrome_trace(tr.to_dicts())
        text = json.dumps(payload)  # must be JSON-serializable
        decoded = json.loads(text)
        events = decoded["traceEvents"]
        assert decoded["displayTimeUnit"] == "ms"
        assert all(e["ph"] == "X" for e in events)
        batch = next(e for e in events if e["name"] == "batch")
        assert batch["tid"] == 1
        assert batch["dur"] == pytest.approx(0.25e6)  # microseconds


class TestMetrics:
    def test_counter(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge("x")
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram_buckets(self):
        h = Histogram("x", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        d = h.to_dict()
        assert d["counts"] == [1, 1, 1]  # <=1, <=2, overflow
        assert d["count"] == 3
        assert h.mean == pytest.approx((0.5 + 1.5 + 99.0) / 3)

    def test_histogram_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=())
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))

    def test_registry_kind_conflict(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_registry_reuses_instances(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.counter("a").inc(3)
        assert reg.to_dict()["a"]["value"] == 5


# -- end-to-end acceptance ------------------------------------------------


@pytest.fixture(scope="module")
def observed_setting():
    rng = np.random.default_rng(7)
    graph = synthetic_lp_graph(300, 1200, feature_dim=16,
                               num_communities=6, rng=rng)
    split = split_edges(graph, rng=rng)
    config = TrainConfig(epochs=2, batch_size=64, observe=True, seed=7)
    result = run_framework("splpg", split, 2, config,
                           rng=np.random.default_rng(7))
    return split, config, result


class TestObservedRun:
    def test_report_attached(self, observed_setting):
        _, _, result = observed_setting
        assert isinstance(result.report, RunReport)
        assert result.report.num_workers == 2
        assert result.report.framework == "splpg"

    def test_comm_totals_byte_exact(self, observed_setting):
        _, _, result = observed_setting
        rep, comm = result.report, result.comm_total
        assert rep.comm["feature_bytes"] == comm.feature_bytes
        assert rep.comm["structure_bytes"] == comm.structure_bytes
        assert rep.comm["sync_bytes"] == comm.sync_bytes
        assert rep.comm["total_bytes"] == comm.total_bytes

    def test_metric_counters_mirror_ledger(self, observed_setting):
        _, _, result = observed_setting
        m, comm = result.report.metrics, result.comm_total
        assert m["comm.feature_bytes"]["value"] == comm.feature_bytes
        assert m["comm.structure_bytes"]["value"] == comm.structure_bytes
        assert m["comm.sync_bytes"]["value"] == comm.sync_bytes

    def test_chrome_trace_round_trip(self, observed_setting):
        _, _, result = observed_setting
        payload = json.loads(json.dumps(result.report.chrome_trace()))
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        names = {e["name"] for e in events}
        assert {"epoch", "round", "batch", "sample", "fetch",
                "compute", "sync"} <= names
        # Spans nest: every batch lies inside some round interval.
        rounds = [(e["ts"], e["ts"] + e["dur"])
                  for e in events if e["name"] == "round"]
        for e in events:
            if e["name"] != "batch":
                continue
            assert any(lo <= e["ts"] and e["ts"] + e["dur"] <= hi
                       for lo, hi in rounds)

    def test_same_seed_bit_identical(self, observed_setting):
        split, config, result = observed_setting
        again = run_framework("splpg", split, 2, config,
                              rng=np.random.default_rng(7))
        assert again.report.to_json() == result.report.to_json()

    def test_observe_off_equivalent(self, observed_setting):
        split, config, result = observed_setting
        off = TrainConfig(epochs=2, batch_size=64, observe=False, seed=7)
        plain = run_framework("splpg", split, 2, off,
                              rng=np.random.default_rng(7))
        assert plain.report is None
        assert [h.mean_loss for h in plain.history] == \
               [h.mean_loss for h in result.history]
        assert plain.comm_total == result.comm_total
        assert plain.test.hits == result.test.hits

    def test_report_json_round_trip(self, observed_setting, tmp_path):
        _, _, result = observed_setting
        path = tmp_path / "run.json"
        result.report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded.to_json() == result.report.to_json()

    def test_top_spans_ranked(self, observed_setting):
        _, _, result = observed_setting
        top = result.report.top_spans(3)
        assert len(top) == 3
        secs = [s for _, _, s in top]
        assert secs == sorted(secs, reverse=True)

    def test_loss_histogram_populated(self, observed_setting):
        _, _, result = observed_setting
        hist = result.report.metrics["train.loss"]
        assert hist["kind"] == "histogram"
        assert hist["count"] > 0
        assert list(hist["buckets"]) == list(LOSS_BUCKETS)


class TestObserverCostModel:
    def test_transfer_and_compute_seconds(self):
        obs = RunObserver()
        hw = obs.hardware
        assert obs.transfer_seconds(hw.bytes_per_second) == pytest.approx(
            1.0)
        assert obs.transfer_seconds(0, requests=2) == pytest.approx(
            2 * hw.request_latency_s)
        assert obs.compute_seconds(hw.edges_per_second) == pytest.approx(1.0)
        assert obs.sync_seconds(0) == pytest.approx(hw.sync_latency_s)


class TestCli:
    def test_summarize_and_export(self, observed_setting, tmp_path, capsys):
        _, _, result = observed_setting
        report = tmp_path / "run.json"
        result.report.save(str(report))

        assert obs_cli(["summarize", str(report)]) == 0
        out = capsys.readouterr().out
        assert "framework: splpg" in out

        trace = tmp_path / "out.trace.json"
        assert obs_cli(["export", str(report), "-o", str(trace)]) == 0
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]

    def test_missing_file_exit_2(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            obs_cli(["summarize", str(tmp_path / "nope.json")])
        assert exc.value.code == 2
