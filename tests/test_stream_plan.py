"""ArrivalPlan: seeded, replayable edge-stream generation."""

import numpy as np
import pytest

from repro.stream import STREAM_EVENT_KINDS, ArrivalPlan, StreamEvent


class TestStreamEvent:
    def test_kinds_and_validation(self):
        assert set(STREAM_EVENT_KINDS) == {"insert", "delete", "drift"}
        event = StreamEvent("insert", tick=0, u=3, v=1)
        assert event.edge == (1, 3)
        with pytest.raises(ValueError):
            StreamEvent("insert", tick=0, u=2, v=2)  # self-loop
        with pytest.raises(ValueError):
            StreamEvent("drift", tick=0, u=1, scale=0.0)
        with pytest.raises(ValueError):
            StreamEvent("explode", tick=0, u=1, v=2)

    def test_round_trip(self):
        event = StreamEvent("drift", tick=4, u=7, scale=-0.25)
        assert StreamEvent.from_dict(event.to_dict()) == event


class TestArrivalPlan:
    def test_generate_is_deterministic(self):
        a = ArrivalPlan.generate(50, ticks=6, seed=11)
        b = ArrivalPlan.generate(50, ticks=6, seed=11)
        assert a.events == b.events
        c = ArrivalPlan.generate(50, ticks=6, seed=12)
        assert a.events != c.events

    def test_per_tick_events_independent_of_horizon(self):
        """The (seed, tick) trick: tick t's events don't depend on how
        many ticks the plan covers."""
        short = ArrivalPlan.generate(50, ticks=3, seed=5)
        long = ArrivalPlan.generate(50, ticks=8, seed=5)
        for tick in range(3):
            assert short.events_at(tick) == long.events_at(tick)

    def test_events_within_bounds(self):
        plan = ArrivalPlan.generate(30, ticks=5, seed=2,
                                    inserts_per_tick=6.0)
        for event in plan.events:
            assert 0 <= event.tick < 5
            assert 0 <= event.u < 30
            if event.kind != "drift":
                assert 0 <= event.v < 30 and event.u != event.v

    def test_counts_and_round_trip(self):
        plan = ArrivalPlan.generate(40, ticks=4, seed=9)
        counts = plan.counts()
        assert sum(counts.values()) == len(plan.events)
        clone = ArrivalPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert not plan.is_empty()

    def test_validation_rejects_out_of_range(self):
        event = StreamEvent("insert", tick=9, u=0, v=1)
        with pytest.raises(ValueError):
            ArrivalPlan(num_nodes=10, ticks=3, events=(event,))
        bad_node = StreamEvent("insert", tick=0, u=0, v=99)
        with pytest.raises(ValueError):
            ArrivalPlan(num_nodes=10, ticks=3, events=(bad_node,))

    def test_describe_mentions_counts(self):
        plan = ArrivalPlan.generate(40, ticks=2, seed=1)
        assert "tick" in plan.describe()
