"""Statistical tests on the samplers' distributions.

These check that the samplers draw from the distributions the paper's
semantics require — uniformity of negative destinations over the
candidate set, fanout selection uniformity over neighbors, and the
sparsifier's sampling frequencies matching its probability vector.
"""

import numpy as np
import pytest

from repro.graph import Graph
from repro.sampling import (
    GlobalUniformNegativeSampler,
    GraphNeighborSource,
    PerSourceUniformNegativeSampler,
    sample_block,
)
from repro.sparsify import sampling_probabilities


class TestPerSourceUniformity:
    def test_destinations_uniform_over_candidates(self):
        """chi^2-style check: destination counts over a candidate set
        should be flat for a source with no candidate neighbors."""
        g = Graph.from_edges(52, [[50, 51]])  # nodes 0..49 isolated
        rng = np.random.default_rng(0)
        sampler = PerSourceUniformNegativeSampler(
            g, candidates=np.arange(50), rng=rng)
        draws = sampler.sample(np.full(20_000, 50, dtype=np.int64))
        counts = np.bincount(draws[:, 1], minlength=50)
        expected = 20_000 / 50
        # all counts within 5 sigma of the binomial expectation
        sigma = np.sqrt(expected * (1 - 1 / 50))
        assert np.all(np.abs(counts - expected) < 5 * sigma)

    def test_excluded_neighbors_get_zero_mass(self):
        # star: source 0 connected to 1..9; candidates 1..19
        g = Graph.from_edges(20, [[0, i] for i in range(1, 10)])
        rng = np.random.default_rng(1)
        sampler = PerSourceUniformNegativeSampler(
            g, candidates=np.arange(1, 20), rng=rng)
        draws = sampler.sample(np.zeros(5000, dtype=np.int64))
        assert np.all(draws[:, 1] >= 10)  # neighbors rejected


class TestGlobalUniformity:
    def test_endpoint_marginals_flat(self):
        g = Graph.from_edges(40, [[0, 1]])
        rng = np.random.default_rng(2)
        sampler = GlobalUniformNegativeSampler(g, rng=rng)
        pairs = sampler.sample(20_000)
        counts = np.bincount(pairs.ravel(), minlength=40)
        expected = 2 * 20_000 / 40
        sigma = np.sqrt(expected)
        assert np.all(np.abs(counts - expected) < 6 * sigma)


class TestFanoutUniformity:
    def test_each_neighbor_equally_likely(self):
        """fanout-2 of a degree-6 hub: each neighbor appears with
        probability 1/3 per draw."""
        g = Graph.from_edges(7, [[0, i] for i in range(1, 7)])
        source = GraphNeighborSource(g)
        rng = np.random.default_rng(3)
        counts = np.zeros(7)
        trials = 6000
        for _ in range(trials):
            block = sample_block(source, np.array([0]), fanout=2, rng=rng)
            sampled = block.src_nodes[block.edge_src]
            counts[sampled] += 1
        probs = counts[1:] / (2 * trials)
        assert np.allclose(probs, 1.0 / 6.0, atol=0.02)


class TestSparsifierFrequencies:
    def test_sampling_matches_probability_vector(self):
        """Empirical edge pick frequency tracks p ∝ 1/du + 1/dv."""
        # lollipop: a clique (low resistance edges) plus a path (high)
        edges = [[i, j] for i in range(6) for j in range(i + 1, 6)]
        edges += [[5, 6], [6, 7], [7, 8]]
        g = Graph.from_edges(9, edges)
        probs = sampling_probabilities(g)
        edge_list = g.edge_list()
        rng = np.random.default_rng(4)
        draws = rng.choice(edge_list.shape[0], size=50_000, p=probs)
        freq = np.bincount(draws, minlength=edge_list.shape[0]) / 50_000
        assert np.allclose(freq, probs, atol=0.01)
        # And the path edges must dominate the clique edges.
        path_idx = [i for i, e in enumerate(edge_list.tolist())
                    if e in ([5, 6], [6, 7], [7, 8])]
        clique_idx = [i for i in range(edge_list.shape[0])
                      if i not in path_idx]
        assert probs[path_idx].min() > probs[clique_idx].max()
