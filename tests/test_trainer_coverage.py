"""Trainer positive-edge coverage semantics and degenerate setups."""

import numpy as np
import pytest

from repro import TrainConfig
from repro.core import FRAMEWORKS, build_trainer
from repro.partition import partition_graph


def config(**overrides):
    base = dict(gnn_type="sage", hidden_dim=16, num_layers=2,
                fanouts=(5, 3), batch_size=64, epochs=1, hits_k=20,
                eval_every=2, seed=3)
    base.update(overrides)
    return TrainConfig(**base)


def edge_key_set(edges, n):
    lo = np.minimum(edges[:, 0], edges[:, 1])
    hi = np.maximum(edges[:, 0], edges[:, 1])
    return set((lo * n + hi).tolist())


class TestPositiveCoverage:
    def test_owned_cover_is_disjoint_partition_of_edges(self, small_split):
        """With complete data sharing, workers jointly iterate every
        training edge exactly once per epoch."""
        trainer = build_trainer(FRAMEWORKS["psgd_pa_plus"], small_split, 3,
                                config(), rng=np.random.default_rng(0))
        n = small_split.train_graph.num_nodes
        sets = [edge_key_set(w.loader.edges, n) for w in trainer.workers]
        union = set().union(*sets)
        total = sum(len(s) for s in sets)
        assert total == len(union)  # disjoint
        assert union == edge_key_set(small_split.train_graph.edge_list(), n)

    def test_induced_workers_lose_cut_edges(self, small_split):
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], small_split, 3,
                                config(), rng=np.random.default_rng(0))
        n = small_split.train_graph.num_nodes
        union = set().union(*[edge_key_set(w.loader.edges, n)
                              for w in trainer.workers])
        full = edge_key_set(small_split.train_graph.edge_list(), n)
        assert union < full  # strictly fewer: cross-partition edges lost

    def test_mirrored_workers_duplicate_cut_edges(self, small_split):
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 3,
                                config(), rng=np.random.default_rng(0))
        n = small_split.train_graph.num_nodes
        sets = [edge_key_set(w.loader.edges, n) for w in trainer.workers]
        union = set().union(*sets)
        total = sum(len(s) for s in sets)
        full = edge_key_set(small_split.train_graph.edge_list(), n)
        assert union == full          # nothing lost
        assert total > len(union)     # cross edges appear on both sides

    def test_random_tma_loses_most_edges(self, small_split):
        trainer = build_trainer(FRAMEWORKS["random_tma"], small_split, 4,
                                config(), rng=np.random.default_rng(0))
        n = small_split.train_graph.num_nodes
        union = set().union(*[edge_key_set(w.loader.edges, n)
                              for w in trainer.workers])
        full = edge_key_set(small_split.train_graph.edge_list(), n)
        # i.i.d. assignment at p=4 keeps ~1/4 of edges intra-partition
        assert len(union) < 0.6 * len(full)


class TestDegenerateSetups:
    def test_single_partition_splpg(self, small_split):
        trainer = build_trainer(FRAMEWORKS["splpg"], small_split, 1,
                                config(), rng=np.random.default_rng(0))
        result = trainer.train()
        # One worker owning everything pays nothing.
        assert result.comm_total.graph_data_bytes == 0
        assert np.isfinite(result.test.auc)

    def test_invalid_positive_mode(self, small_split):
        from repro.distributed import DistributedTrainer
        pg = partition_graph(small_split.train_graph, 2, "metis",
                             rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            DistributedTrainer("x", small_split, pg, config(),
                               positive_mode="ownership")

    def test_reused_partitioning_shared_across_frameworks(self, small_split):
        pg = partition_graph(small_split.train_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=True)
        t1 = build_trainer(FRAMEWORKS["splpg"], small_split, 2, config(),
                           partitioned=pg, rng=np.random.default_rng(1))
        t2 = build_trainer(FRAMEWORKS["splpg_plus"], small_split, 2,
                           config(), partitioned=pg,
                           rng=np.random.default_rng(2))
        assert t1.partitioned is pg and t2.partitioned is pg
