"""GNN encoder stacks, predictors and the full link-prediction model."""

import numpy as np
import pytest

from repro.nn import (
    DotPredictor,
    GNNModel,
    LinkPredictionModel,
    MLPPredictor,
    Tensor,
    build_model,
    make_conv,
)
from repro.sampling import NeighborSampler


@pytest.fixture
def comp_graph(featured_graph, rng):
    sampler = NeighborSampler([5, 3], rng=rng)
    seeds = np.array([0, 1, 2, 3])
    return sampler.sample(featured_graph, seeds)


class TestGNNModel:
    @pytest.mark.parametrize("gnn_type", ["gcn", "sage", "gat", "gatv2"])
    def test_forward_shape(self, gnn_type, comp_graph, featured_graph, rng):
        model = GNNModel(gnn_type, in_dim=16, hidden_dim=8, num_layers=2,
                         rng=rng)
        feats = featured_graph.features[comp_graph.input_nodes]
        out = model(comp_graph, feats)
        assert out.shape == (4, 8)

    def test_layer_count_mismatch(self, comp_graph, featured_graph, rng):
        model = GNNModel("sage", 16, 8, num_layers=3, rng=rng)
        feats = featured_graph.features[comp_graph.input_nodes]
        with pytest.raises(ValueError):
            model(comp_graph, feats)

    def test_feature_row_mismatch(self, comp_graph, rng):
        model = GNNModel("sage", 16, 8, num_layers=2, rng=rng)
        with pytest.raises(ValueError):
            model(comp_graph, np.zeros((1, 16)))

    def test_unknown_type(self, rng):
        with pytest.raises(ValueError):
            make_conv("transformer", 4, 4, rng=rng)

    def test_zero_layers_rejected(self, rng):
        with pytest.raises(ValueError):
            GNNModel("sage", 4, 4, num_layers=0, rng=rng)

    def test_out_dim_override(self, comp_graph, featured_graph, rng):
        model = GNNModel("sage", 16, 8, num_layers=2, out_dim=3, rng=rng)
        feats = featured_graph.features[comp_graph.input_nodes]
        assert model(comp_graph, feats).shape == (4, 3)


class TestPredictors:
    def test_dot_predictor(self):
        h_u = Tensor(np.array([[1.0, 2.0], [0.0, 1.0]]))
        h_v = Tensor(np.array([[3.0, 4.0], [1.0, 0.0]]))
        out = DotPredictor()(h_u, h_v)
        assert np.allclose(out.data, [11.0, 0.0])

    def test_mlp_predictor_shape(self, rng):
        pred = MLPPredictor(8, num_layers=3, rng=rng)
        h = Tensor(rng.standard_normal((5, 8)))
        assert pred(h, h).shape == (5,)

    def test_mlp_predictor_depth(self, rng):
        pred = MLPPredictor(8, num_layers=3, rng=rng)
        assert len(pred.mlp.layers) == 3


class TestLinkPredictionModel:
    def test_build_model_defaults(self):
        model = build_model("sage", in_dim=16, hidden_dim=8, num_layers=2,
                            seed=0)
        assert isinstance(model, LinkPredictionModel)
        assert isinstance(model.predictor, MLPPredictor)

    def test_build_model_dot(self):
        model = build_model("sage", 16, 8, num_layers=2, predictor="dot",
                            seed=0)
        assert isinstance(model.predictor, DotPredictor)

    def test_build_model_unknown_predictor(self):
        with pytest.raises(ValueError):
            build_model("sage", 16, 8, predictor="bilinear")

    def test_seed_reproducibility(self):
        a = build_model("gcn", 8, 4, num_layers=2, seed=42)
        b = build_model("gcn", 8, 4, num_layers=2, seed=42)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_end_to_end_scoring(self, comp_graph, featured_graph):
        model = build_model("sage", 16, 8, num_layers=2, seed=0)
        feats = featured_graph.features[comp_graph.input_nodes]
        scores = model(comp_graph, feats, np.array([0, 1]),
                       np.array([2, 3]))
        assert scores.shape == (2,)

    def test_gradients_flow_end_to_end(self, comp_graph, featured_graph):
        model = build_model("sage", 16, 8, num_layers=2, seed=0)
        feats = featured_graph.features[comp_graph.input_nodes]
        scores = model(comp_graph, feats, np.array([0]), np.array([1]))
        scores.sum().backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)
