"""Checkpointing and the full-batch GCN path."""

import numpy as np
import pytest

from repro.nn import (
    FullBatchLinkPredictor,
    FullGraphGCN,
    Tensor,
    build_model,
    load_model,
    load_state_dict,
    normalized_adjacency,
    save_model,
    save_state_dict,
    train_full_batch,
)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = build_model("sage", 8, 4, num_layers=2, seed=1)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        other = build_model("sage", 8, 4, num_layers=2, seed=99)
        load_model(other, path)
        for (_, a), (_, b) in zip(model.named_parameters(),
                                  other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_state_dict_roundtrip(self, tmp_path):
        state = {"w": np.arange(6.0).reshape(2, 3), "b": np.zeros(3)}
        path = str(tmp_path / "state.npz")
        save_state_dict(state, path)
        loaded = load_state_dict(path)
        assert set(loaded) == {"w", "b"}
        assert np.allclose(loaded["w"], state["w"])

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(str(tmp_path / "nope.npz"))

    def test_non_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "random.npz")
        np.savez(path, junk=np.zeros(2))
        with pytest.raises(ValueError):
            load_state_dict(path)

    def test_architecture_mismatch_rejected(self, tmp_path):
        model = build_model("sage", 8, 4, num_layers=2, seed=1)
        path = str(tmp_path / "model.npz")
        save_model(model, path)
        wrong = build_model("sage", 8, 6, num_layers=2, seed=1)
        with pytest.raises((KeyError, ValueError)):
            load_model(wrong, path)


class TestNormalizedAdjacency:
    def test_row_sums_with_self_loops(self, triangle_graph):
        prop = normalized_adjacency(triangle_graph)
        # symmetric normalization of a regular graph: rows sum to 1
        assert np.allclose(np.asarray(prop.sum(axis=1)).ravel(), 1.0)

    def test_isolated_node_zero_row(self):
        from repro.graph import Graph
        g = Graph.from_edges(3, [[0, 1]])
        prop = normalized_adjacency(g, add_self_loops=False)
        assert prop[2].nnz == 0

    def test_symmetric(self, featured_graph):
        prop = normalized_adjacency(featured_graph)
        diff = (prop - prop.T)
        assert abs(diff).max() < 1e-12


class TestFullGraphGCN:
    def test_forward_shape(self, featured_graph, rng):
        model = FullGraphGCN(16, 8, num_layers=2, rng=rng)
        prop = normalized_adjacency(featured_graph)
        out = model(prop, featured_graph.features)
        assert out.shape == (featured_graph.num_nodes, 8)

    def test_invalid_layers(self, rng):
        with pytest.raises(ValueError):
            FullGraphGCN(4, 4, num_layers=0, rng=rng)

    def test_predictor_shape(self, featured_graph):
        model = FullBatchLinkPredictor(16, 8, seed=0)
        prop = normalized_adjacency(featured_graph)
        pairs = featured_graph.edge_list()[:7]
        assert model(prop, featured_graph.features, pairs).shape == (7,)


class TestTrainFullBatch:
    def test_learns(self, small_split):
        result = train_full_batch(small_split, hidden_dim=16,
                                  num_layers=2, epochs=40, hits_k=20,
                                  seed=0)
        losses = result["losses"]
        assert losses[-1] < losses[0]
        assert result["test_auc"] > 0.6
        assert 0 <= result["test_hits"] <= 1

    def test_requires_features(self, small_split):
        from repro.graph.splits import EdgeSplit
        bare = EdgeSplit(
            train_graph=small_split.train_graph.with_features(None),
            train_pos=small_split.train_pos,
            val_pos=small_split.val_pos,
            test_pos=small_split.test_pos,
            val_neg=small_split.val_neg,
            test_neg=small_split.test_neg,
        )
        with pytest.raises(ValueError):
            train_full_batch(bare, epochs=1)
