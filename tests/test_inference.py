"""Distributed inference: routing, consistency and comm accounting."""

import numpy as np
import pytest

from repro.distributed import (
    DistributedScorer,
    RemoteGraphStore,
    SparsifiedRemoteStore,
)
from repro.eval import score_pairs
from repro.nn import build_model
from repro.partition import partition_graph
from repro.sparsify import sparsify_partitions


@pytest.fixture(scope="module")
def setting():
    from repro.graph import synthetic_lp_graph
    rng = np.random.default_rng(5)
    graph = synthetic_lp_graph(num_nodes=200, target_edges=700,
                               feature_dim=16, num_communities=4, rng=rng)
    pg_mirror = partition_graph(graph, 3, "metis",
                                rng=np.random.default_rng(1), mirror=True)
    model = build_model("sage", 16, 12, num_layers=2, seed=0)
    return graph, pg_mirror, model


class TestRouting:
    def test_pairs_routed_by_source_owner(self, setting):
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg,
                                   remote=RemoteGraphStore(graph),
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:30]
        result = scorer.score(pairs)
        assert sum(result.pairs_per_worker) == 30
        owners = pg.assignment[pairs[:, 0]]
        for part in range(3):
            assert result.pairs_per_worker[part] == \
                int((owners == part).sum())

    def test_all_pairs_scored(self, setting):
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg,
                                   remote=RemoteGraphStore(graph),
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:17]
        result = scorer.score(pairs)
        assert result.scores.shape == (17,)
        assert np.all(np.isfinite(result.scores))


class TestConsistency:
    def test_matches_centralized_full_neighbor_scores(self, setting):
        """Full-neighbor distributed inference with a complete store is
        byte-for-byte the centralized computation."""
        graph, pg, model = setting
        pairs = graph.edge_list()[:40]
        scorer = DistributedScorer(model, pg,
                                   remote=RemoteGraphStore(graph),
                                   fanouts=(-1, -1))
        distributed = scorer.score(pairs).scores
        centralized = score_pairs(model, graph, pairs, fanouts=(-1, -1),
                                  rng=np.random.default_rng(0))
        np.testing.assert_allclose(distributed, centralized, atol=1e-9)

    def test_sparsified_store_changes_remote_scores_only_slightly(
            self, setting):
        graph, pg, model = setting
        sparsified = sparsify_partitions(pg, alpha=0.3,
                                         rng=np.random.default_rng(2))
        store = SparsifiedRemoteStore(graph, sparsified.graphs,
                                      pg.assignment)
        scorer = DistributedScorer(model, pg, remote=store,
                                   fanouts=(-1, -1))
        full_scorer = DistributedScorer(model, pg,
                                        remote=RemoteGraphStore(graph),
                                        fanouts=(-1, -1))
        pairs = graph.edge_list()[:40]
        a = scorer.score(pairs).scores
        b = full_scorer.score(pairs).scores
        # correlated even though remote neighborhoods are sparsified
        assert np.corrcoef(a, b)[0, 1] > 0.8


class TestInferenceComm:
    def test_local_pairs_free_when_mirrored(self, setting):
        """A mirrored worker scoring its own nodes' pairs with 1-hop
        model needs nothing remote... but 2-hop may; verify the no-store
        case charges nothing at all."""
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg, remote=None,
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:20]
        result = scorer.score(pairs)
        assert result.comm.graph_data_bytes == 0

    def test_remote_store_charged(self, setting):
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg,
                                   remote=RemoteGraphStore(graph),
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:40]
        result = scorer.score(pairs)
        assert result.comm.graph_data_bytes > 0

    def test_sparsified_store_cheaper(self, setting):
        graph, pg, model = setting
        sparsified = sparsify_partitions(pg, alpha=0.15,
                                         rng=np.random.default_rng(2))
        cheap = DistributedScorer(
            model, pg,
            remote=SparsifiedRemoteStore(graph, sparsified.graphs,
                                         pg.assignment),
            fanouts=(-1, -1))
        costly = DistributedScorer(model, pg,
                                   remote=RemoteGraphStore(graph),
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:60]
        assert cheap.score(pairs).comm.graph_data_bytes < \
            costly.score(pairs).comm.graph_data_bytes


class TestEmbedMemo:
    def test_repeat_scoring_hits_memo_not_encoder(self, setting):
        """Second identical score() call must reuse every memoized
        embedding: zero fresh computes, nonzero memo hits."""
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg, remote=None,
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:30]
        first = scorer.score(pairs)
        computed = scorer.stats["embed_computed"]
        assert computed > 0
        second = scorer.score(pairs)
        assert scorer.stats["embed_computed"] == computed
        assert scorer.stats["embed_memo_hits"] >= computed
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_weight_change_invalidates_memo(self, setting):
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg, remote=None,
                                   fanouts=(-1, -1))
        pairs = graph.edge_list()[:30]
        scorer.score(pairs)
        computed = scorer.stats["embed_computed"]
        param = model.parameters()[0]
        param.data = param.data + 0.25
        try:
            scorer.score(pairs)
        finally:
            param.data = param.data - 0.25
        # The fingerprint changed, so everything recomputed.
        assert scorer.stats["embed_computed"] == 2 * computed

    def test_sampled_fanouts_disable_memo(self, setting):
        """A stochastic neighborhood cannot be memoized."""
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg, remote=None,
                                   fanouts=(5, 5))
        pairs = graph.edge_list()[:30]
        scorer.score(pairs)
        scorer.score(pairs)
        assert scorer.stats["embed_memo_hits"] == 0

    def test_empty_pairs_graceful(self, setting):
        graph, pg, model = setting
        scorer = DistributedScorer(model, pg, remote=None,
                                   fanouts=(-1, -1))
        result = scorer.score(np.empty((0, 2), dtype=np.int64))
        assert result.scores.shape == (0,)
        assert sum(result.pairs_per_worker) == 0
        assert result.rerouted_pairs == 0
        assert isinstance(result.summary(), str)
