"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.eval import auc, hits_at_k
from repro.graph import Graph, exact_effective_resistance, laplacian
from repro.nn import Tensor, bce_with_logits, segment_softmax, segment_sum
from repro.partition import (
    PartitionedGraph,
    edge_cut,
    metis_partition,
    random_tma_partition,
)
from repro.sparsify import (
    approx_effective_resistance,
    sampling_probabilities,
    spielman_srivastava_sparsify,
)

common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_graphs(draw, min_nodes=3, max_nodes=24):
    """Connected-ish simple undirected graphs as (num_nodes, edges)."""
    n = draw(st.integers(min_nodes, max_nodes))
    # Spanning-path backbone guarantees no isolated nodes.
    backbone = [(i, i + 1) for i in range(n - 1)]
    extra_count = draw(st.integers(0, n))
    extras = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=extra_count, max_size=extra_count))
    edges = backbone + [e for e in extras if e[0] != e[1]]
    return n, np.asarray(edges, dtype=np.int64)


class TestGraphProperties:
    @common_settings
    @given(random_graphs())
    def test_edge_list_roundtrip(self, g):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        rebuilt = Graph.from_edges(n, graph.edge_list())
        assert np.array_equal(graph.edge_list(), rebuilt.edge_list())
        assert np.array_equal(graph.indptr, rebuilt.indptr)

    @common_settings
    @given(random_graphs())
    def test_degree_sum_is_twice_edges(self, g):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        assert graph.degrees.sum() == 2 * graph.num_edges

    @common_settings
    @given(random_graphs())
    def test_adjacency_symmetric(self, g):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        adj = graph.adjacency().toarray()
        assert np.allclose(adj, adj.T)

    @common_settings
    @given(random_graphs())
    def test_laplacian_psd(self, g):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        eigvals = np.linalg.eigvalsh(laplacian(graph).toarray())
        assert eigvals.min() >= -1e-9


class TestEffectiveResistanceProperties:
    @common_settings
    @given(random_graphs(max_nodes=16))
    def test_lower_bound_theorem2(self, g):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        e = graph.edge_list()
        exact = exact_effective_resistance(graph, e)
        approx = approx_effective_resistance(graph, e)
        assert np.all(exact >= 0.5 * approx - 1e-8)

    @common_settings
    @given(random_graphs(max_nodes=16))
    def test_resistance_at_most_one_for_edges(self, g):
        """For an edge (u,v), r_uv <= 1 (shorting through the edge)."""
        n, edges = g
        graph = Graph.from_edges(n, edges)
        exact = exact_effective_resistance(graph)
        assert np.all(exact <= 1.0 + 1e-8)

    @common_settings
    @given(random_graphs(max_nodes=16), st.integers(0, 2**31 - 1))
    def test_sparsifier_invariants(self, g, seed):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        rng = np.random.default_rng(seed)
        m = graph.num_edges
        sparse = spielman_srivastava_sparsify(graph, 2 * m, rng=rng)
        # nodes preserved, edges subset, weights positive
        assert sparse.num_nodes == n
        orig = set(map(tuple, graph.edge_list().tolist()))
        assert all(tuple(e) in orig for e in sparse.edge_list().tolist())
        assert np.all(sparse.edge_weight_list() > 0)

    @common_settings
    @given(random_graphs(max_nodes=16))
    def test_probabilities_sum_to_one(self, g):
        n, edges = g
        graph = Graph.from_edges(n, edges)
        p = sampling_probabilities(graph)
        assert p.sum() == pytest.approx(1.0)


class TestPartitionProperties:
    @common_settings
    @given(random_graphs(min_nodes=8, max_nodes=40),
           st.integers(2, 4), st.integers(0, 2**31 - 1))
    def test_metis_cover_and_range(self, g, k, seed):
        n, edges = g
        assume(n >= 2 * k)
        graph = Graph.from_edges(n, edges)
        a = metis_partition(graph, k, rng=np.random.default_rng(seed))
        assert a.shape == (n,)
        assert a.min() >= 0 and a.max() < k

    @common_settings
    @given(random_graphs(min_nodes=8, max_nodes=30),
           st.integers(2, 3), st.integers(0, 2**31 - 1))
    def test_partition_edge_conservation(self, g, k, seed):
        """induced-local + cut = total; mirrored-local - cut = total."""
        n, edges = g
        assume(n >= 2 * k)
        graph = Graph.from_edges(n, edges)
        rng = np.random.default_rng(seed)
        a = random_tma_partition(graph, k, rng=rng)
        cut = edge_cut(graph, a)
        induced = PartitionedGraph.build(graph, a, k, mirror=False)
        mirrored = PartitionedGraph.build(graph, a, k, mirror=True)
        assert sum(p.num_edges for p in induced.parts) == \
            graph.num_edges - cut
        assert sum(p.num_edges for p in mirrored.parts) == \
            graph.num_edges + cut


class TestAutogradProperties:
    @common_settings
    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=16),
           st.lists(st.floats(-10, 10), min_size=1, max_size=16))
    def test_addition_commutes(self, xs, ys):
        size = min(len(xs), len(ys))
        a = Tensor(np.array(xs[:size]))
        b = Tensor(np.array(ys[:size]))
        assert np.allclose((a + b).data, (b + a).data)

    @common_settings
    @given(st.integers(1, 30), st.integers(1, 5),
           st.integers(0, 2**31 - 1))
    def test_segment_sum_conserves_mass(self, rows, segments, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rows, 2))
        seg = rng.integers(0, segments, size=rows)
        out = segment_sum(Tensor(x), seg, segments)
        assert np.allclose(out.data.sum(axis=0), x.sum(axis=0))

    @common_settings
    @given(st.integers(1, 30), st.integers(1, 4),
           st.integers(0, 2**31 - 1))
    def test_segment_softmax_rows_sum_to_one(self, rows, segments, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rows, 1)) * 5
        seg = rng.integers(0, segments, size=rows)
        out = segment_softmax(Tensor(x), seg, segments)
        sums = np.zeros(segments)
        np.add.at(sums, seg, out.data.ravel())
        occupied = np.bincount(seg, minlength=segments) > 0
        assert np.allclose(sums[occupied], 1.0)

    @common_settings
    @given(st.lists(st.floats(-20, 20), min_size=1, max_size=16),
           st.integers(0, 2**31 - 1))
    def test_bce_nonnegative(self, logits, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=len(logits)).astype(float)
        loss = bce_with_logits(Tensor(np.array(logits)), labels)
        assert loss.item() >= 0.0


class TestMetricProperties:
    @common_settings
    @given(st.integers(1, 50), st.integers(1, 200),
           st.integers(0, 2**31 - 1))
    def test_hits_in_unit_interval(self, n_pos, n_neg, seed):
        rng = np.random.default_rng(seed)
        pos, neg = rng.standard_normal(n_pos), rng.standard_normal(n_neg)
        h = hits_at_k(pos, neg, k=min(n_neg, 20))
        assert 0.0 <= h <= 1.0

    @common_settings
    @given(st.integers(1, 50), st.integers(1, 50),
           st.integers(0, 2**31 - 1))
    def test_auc_complement_symmetry(self, n_pos, n_neg, seed):
        rng = np.random.default_rng(seed)
        pos, neg = rng.standard_normal(n_pos), rng.standard_normal(n_neg)
        assert auc(pos, neg) == pytest.approx(1.0 - auc(neg, pos))

    @common_settings
    @given(st.integers(1, 50), st.integers(1, 50),
           st.floats(0.1, 10.0), st.integers(0, 2**31 - 1))
    def test_auc_invariant_to_monotone_transform(self, n_pos, n_neg,
                                                 scale, seed):
        rng = np.random.default_rng(seed)
        pos, neg = rng.standard_normal(n_pos), rng.standard_normal(n_neg)
        assert auc(pos, neg) == pytest.approx(auc(pos * scale, neg * scale))
