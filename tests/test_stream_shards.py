"""ShardedState: incremental shard patching vs. from-scratch builds."""

import numpy as np
import pytest

from repro.distributed.comm import CommMeter, feature_nbytes
from repro.graph import synthetic_lp_graph
from repro.partition.partitioned import PartitionedGraph
from repro.partition.registry import PartitionSpec
from repro.stream import ArrivalPlan, MutableGraph, ShardedState
from repro.stream.errors import StreamError


def _graph(seed=0, nodes=40, edges=120):
    return synthetic_lp_graph(nodes, edges, feature_dim=6,
                              rng=np.random.default_rng(seed))


def _churn(spec, ticks=5, seed=3):
    """Apply a generated plan to both a MutableGraph and ShardedState."""
    graph = _graph()
    mutable = MutableGraph(graph)
    sharded = ShardedState(mutable.snapshot(), spec, 3, seed=seed)
    plan = ArrivalPlan.generate(graph.num_nodes, ticks, seed,
                                inserts_per_tick=6.0,
                                deletes_per_tick=2.0)
    for tick in range(ticks):
        delta = mutable.apply(plan.events_at(tick), tick)
        sharded.apply_delta(delta)
    return mutable, sharded


def _part_edge_sets(partitioned):
    return [
        {tuple(int(x) for x in row) for row in part.edge_list()}
        for part in partitioned.parts
    ]


class TestNodeLayoutsExact:
    """Between rebalances the assignment is frozen, so incremental
    application must equal a from-scratch build on that assignment."""

    @pytest.mark.parametrize("mirror", [False, True])
    def test_incremental_equals_scratch_build(self, mirror):
        mutable, sharded = _churn(PartitionSpec("metis", mirror=mirror))
        snap = mutable.snapshot()
        incremental = sharded.as_partitioned(snap)
        scratch = PartitionedGraph.build(snap, sharded.assignment,
                                         3, mirror)
        assert _part_edge_sets(incremental) == _part_edge_sets(scratch)
        for p in range(3):
            assert np.array_equal(incremental.local_feature_nodes[p],
                                  scratch.local_feature_nodes[p])

    def test_clean_shards_reuse_cached_csr(self):
        mutable, sharded = _churn(PartitionSpec("metis", mirror=True),
                                  ticks=2)
        snap = mutable.snapshot()
        first = sharded.as_partitioned(snap)
        again = sharded.as_partitioned(snap)
        assert all(a is b for a, b in zip(first.parts, again.parts))


class TestVertexCut:
    def test_cover_stays_total_and_disjoint(self):
        mutable, sharded = _churn(PartitionSpec("vertex_cut"))
        snap = mutable.snapshot()
        current = {tuple(int(x) for x in row)
                   for row in snap.edge_list()}
        stored = [s for s in sharded.shard_edges]
        assert set().union(*stored) == current
        assert sum(len(s) for s in stored) == len(current)
        assert int(sharded._owned_counts.sum()) == len(current)

    def test_online_ownership_is_deterministic(self):
        _, a = _churn(PartitionSpec("vertex_cut"), seed=3)
        _, b = _churn(PartitionSpec("vertex_cut"), seed=3)
        assert a.fingerprint() == b.fingerprint()

    def test_rebalance_restores_scratch_equality(self):
        mutable, sharded = _churn(PartitionSpec("vertex_cut"))
        snap = mutable.snapshot()
        sharded.rebalance(snap, tick=7)
        fresh = sharded.spec.build(
            snap, 3, rng=np.random.default_rng((sharded.seed, 7, 131)))
        rebuilt = sharded.as_partitioned(snap)
        assert _part_edge_sets(rebuilt) == _part_edge_sets(fresh)
        assert np.array_equal(rebuilt.edge_assignment,
                              fresh.edge_assignment)


class TestTriggersAndMeter:
    def test_needs_rebalance_thresholds(self):
        _, sharded = _churn(PartitionSpec("metis"))
        assert sharded.needs_rebalance(0.0, 0.0) is None  # disarmed
        reason = sharded.needs_rebalance(1.0 - 1e-9, 0.0)
        assert reason is not None and "edge_imbalance" in reason
        reason = sharded.needs_rebalance(0.0, 0.5)
        assert reason is not None and "replication_factor" in reason

    def test_imbalance_and_replication_values(self):
        _, sharded = _churn(PartitionSpec("metis", mirror=True))
        assert sharded.edge_imbalance() >= 1.0
        assert sharded.replication_factor() >= 1.0

    def test_delta_charges_meter(self):
        graph = _graph()
        mutable = MutableGraph(graph)
        sharded = ShardedState(mutable.snapshot(),
                               PartitionSpec("metis", mirror=True),
                               3, seed=1)
        plan = ArrivalPlan.generate(graph.num_nodes, 1, seed=5,
                                    inserts_per_tick=8.0,
                                    drifts_per_tick=4.0)
        delta = mutable.apply(plan.events_at(0), 0)
        meter = CommMeter()
        sharded.apply_delta(delta, meter)
        total = meter.total()
        if delta.inserted.size or delta.deleted.size:
            assert total.structure_bytes > 0
        if delta.drifted.size:
            rows = sum(len(sharded.replicas_of(int(n)))
                       for n in delta.drifted)
            assert total.feature_bytes == feature_nbytes(
                rows, graph.feature_dim)

    def test_rebalance_charges_migration(self):
        mutable, sharded = _churn(PartitionSpec("metis", mirror=True))
        meter = CommMeter()
        tally = sharded.rebalance(mutable.snapshot(), tick=9, meter=meter)
        assert sharded.rebalances == 1
        assert tally["moved_edges"] >= 0
        if tally["moved_edges"]:
            assert meter.total().structure_bytes > 0


class TestConsistencyAndState:
    def test_out_of_sync_snapshot_rejected(self):
        mutable, sharded = _churn(PartitionSpec("metis", mirror=True),
                                  ticks=2)
        plan = ArrivalPlan.generate(mutable.snapshot().num_nodes, 5,
                                    seed=99, inserts_per_tick=6.0)
        mutable.apply(plan.events_at(4), 4)  # not applied to shards
        with pytest.raises(StreamError):
            sharded.as_partitioned(mutable.snapshot())

    @pytest.mark.parametrize("spec", [PartitionSpec("metis"),
                                      PartitionSpec("metis", mirror=True),
                                      PartitionSpec("vertex_cut")],
                             ids=["plain", "mirror", "vertex_cut"])
    def test_state_round_trip_preserves_fingerprint(self, spec):
        mutable, sharded = _churn(spec)
        snap = mutable.snapshot()
        clone = ShardedState.from_state_arrays(
            sharded.state_arrays(), snap, spec, 3, seed=3)
        assert clone.fingerprint() == sharded.fingerprint()
        assert _part_edge_sets(clone.as_partitioned(snap)) == \
            _part_edge_sets(sharded.as_partitioned(snap))
