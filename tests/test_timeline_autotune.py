"""Timeline model and alpha auto-tuner."""

import numpy as np
import pytest

from repro import TrainConfig, run_framework
from repro.core import predicted_saving, suggest_alpha
from repro.distributed import (
    CommRecord,
    EpochTimeline,
    HardwareModel,
    estimate_epoch_time,
    timeline_from_result,
)
from repro.graph import synthetic_lp_graph, split_edges
from repro.partition import partition_graph


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(4)
    graph = synthetic_lp_graph(600, 2600, feature_dim=24,
                               num_communities=8, rng=rng)
    split = split_edges(graph, rng=rng)
    pg = partition_graph(split.train_graph, 4, "metis",
                         rng=np.random.default_rng(0), mirror=True)
    return split, pg


class TestEstimateEpochTime:
    def test_breakdown_components(self):
        comm = CommRecord(feature_bytes=10 * 2**20,
                          structure_bytes=2 * 2**20,
                          sync_bytes=2**20)
        t = estimate_epoch_time(comm, num_workers=4,
                                edges_processed=1e7, rounds=20)
        assert t.compute_s > 0 and t.network_s > 0 and t.sync_s > 0
        assert t.total_s == pytest.approx(
            t.compute_s + t.network_s + t.sync_s)
        assert set(t.breakdown()) == {"compute_s", "network_s",
                                      "sync_s", "total_s"}

    def test_zero_comm_means_zero_network(self):
        t = estimate_epoch_time(CommRecord(), num_workers=2,
                                edges_processed=1e6, rounds=5)
        assert t.network_s == 0.0

    def test_more_bandwidth_less_network_time(self):
        comm = CommRecord(feature_bytes=100 * 2**20)
        slow = estimate_epoch_time(comm, 2, 1e6, 5,
                                   hardware=HardwareModel(bandwidth_gbps=1))
        fast = estimate_epoch_time(comm, 2, 1e6, 5,
                                   hardware=HardwareModel(bandwidth_gbps=100))
        assert fast.network_s < slow.network_s

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            estimate_epoch_time(CommRecord(), 0, 1e6, 1)


class TestTimelineFromResult:
    def test_uses_recorded_stats(self, setting):
        split, pg = setting
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=2,
                          hits_k=20, eval_every=3, seed=0)
        result = run_framework("splpg", split, 4, cfg,
                               rng=np.random.default_rng(1))
        assert result.history[0].rounds > 0
        assert result.history[0].mfg_edges > 0
        timeline = timeline_from_result(result)
        assert isinstance(timeline, EpochTimeline)
        assert timeline.total_s > 0

    def test_splpg_network_cheaper_than_plus(self, setting):
        split, pg = setting
        cfg = TrainConfig(gnn_type="sage", hidden_dim=16, num_layers=2,
                          fanouts=(5, 3), batch_size=64, epochs=2,
                          hits_k=20, eval_every=3, seed=0)
        splpg = timeline_from_result(run_framework(
            "splpg", split, 4, cfg, rng=np.random.default_rng(1)))
        plus = timeline_from_result(run_framework(
            "splpg_plus", split, 4, cfg, rng=np.random.default_rng(1)))
        assert splpg.network_s < plus.network_s


class TestAutotune:
    def test_monotone_saving(self, setting):
        _, pg = setting
        savings = [predicted_saving(pg, a, (10, 5), 128)
                   for a in (0.05, 0.2, 0.6)]
        assert savings[0] > savings[1] > savings[2]

    def test_hits_target(self, setting):
        _, pg = setting
        s = suggest_alpha(pg, (10, 5), 128, target_saving=0.7)
        assert s.predicted_saving == pytest.approx(0.7, abs=0.02)
        assert 0.01 <= s.alpha <= 1.0
        assert s.splpg_gb < s.full_sharing_gb

    def test_higher_target_smaller_alpha(self, setting):
        _, pg = setting
        mild = suggest_alpha(pg, (10, 5), 128, target_saving=0.5)
        aggressive = suggest_alpha(pg, (10, 5), 128, target_saving=0.85)
        assert aggressive.alpha < mild.alpha

    def test_easy_target_returns_upper_bound(self, setting):
        _, pg = setting
        s = suggest_alpha(pg, (10, 5), 128, target_saving=0.01)
        assert s.alpha == 1.0 or s.predicted_saving >= 0.01

    def test_invalid_target(self, setting):
        _, pg = setting
        with pytest.raises(ValueError):
            suggest_alpha(pg, (10, 5), 128, target_saving=1.5)
