"""Runtime sanitizer tests: autograd freezing and CommMeter auditing."""

import numpy as np
import pytest

from repro.distributed import CommMeter, RemoteGraphStore, WorkerGraphView
from repro.distributed.comm import feature_nbytes, structure_nbytes
from repro.distributed.store import SparsifiedRemoteStore
from repro.lint import CommAuditError, audit_store, autograd_sanitizer
from repro.lint.runtime import AuditedStore
from repro.nn.tensor import Tensor
from repro.partition import partition_graph
from repro.sparsify import sparsify_with_level


class TestAutogradSanitizer:
    def test_inplace_mutation_of_graph_entered_data_raises(self):
        with autograd_sanitizer():
            t = Tensor(np.ones(4), requires_grad=True)
            loss = (t * 2.0).sum()
            with pytest.raises(ValueError, match="read-only"):
                t.data[0] = 99.0
            loss.backward()
        assert t.grad is not None

    def test_backward_thaws_for_optimizer_updates(self):
        with autograd_sanitizer():
            t = Tensor(np.ones(3), requires_grad=True)
            (t * t).sum().backward()
            # Post-backward in-place update (what optimizers do) works.
            t.data -= 0.1 * t.grad
        assert np.allclose(t.data, 0.8)

    def test_context_exit_thaws_unconsumed_graphs(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with autograd_sanitizer():
            _ = (t * 3.0).sum()  # forward only, never backward'd
            assert not t.data.flags.writeable
        t.data[0] = 7.0  # thawed on exit
        assert t.data[0] == 7.0

    def test_rebound_data_is_frozen_on_next_op(self):
        with autograd_sanitizer():
            t = Tensor(np.ones(3), requires_grad=True)
            t.data = np.full(3, 2.0)  # rebind (load_state_dict style)
            _ = (t + 1.0).sum()
            with pytest.raises(ValueError, match="read-only"):
                t.data[1] = 0.0

    def test_training_step_runs_under_sanitizer(self):
        from repro.nn.models import build_model
        from repro.nn.loss import bce_with_logits
        from repro.nn.optim import Adam
        from repro.sampling.neighbor import NeighborSampler
        from repro.graph import synthetic_lp_graph

        rng = np.random.default_rng(0)
        graph = synthetic_lp_graph(num_nodes=40, target_edges=120,
                                   feature_dim=8, num_communities=2,
                                   rng=rng)
        model = build_model("sage", 8, 16, num_layers=2, seed=0)
        optimizer = Adam(model.parameters(), lr=1e-3)
        sampler = NeighborSampler([5, 5], rng=np.random.default_rng(1))
        with autograd_sanitizer():
            comp = sampler.sample(graph, np.arange(10))
            feats = graph.features[comp.input_nodes]
            scores = model(comp, feats, np.arange(5), np.arange(5, 10))
            loss = bce_with_logits(scores, np.ones(5))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.isfinite(loss.item())


class TestCommAudit:
    def test_uncharged_read_trips_audit(self, featured_graph):
        store = audit_store(RemoteGraphStore(featured_graph))
        nodes = np.arange(10, dtype=np.int64)
        with pytest.raises(CommAuditError, match="uncharged"):
            store.neighbors_batch(nodes, None)  # meter withheld
        with pytest.raises(CommAuditError, match="uncharged"):
            store.fetch_features(nodes, None)

    def test_charged_reads_pass_with_exact_bytes(self, featured_graph):
        store = audit_store(RemoteGraphStore(featured_graph))
        meter = CommMeter()
        nodes = np.arange(10, dtype=np.int64)
        nbrs, _, _ = store.neighbors_batch(nodes, meter)
        assert meter.current.structure_bytes == structure_nbytes(
            nbrs.size, nodes.size)
        feats = store.fetch_features(nodes, meter)
        assert meter.current.feature_bytes == feature_nbytes(
            nodes.size, feats.shape[1])

    def test_undercharging_store_is_caught(self, featured_graph):
        class BuggyStore(RemoteGraphStore):
            def neighbors_batch(self, nodes, meter):
                # "Forgets" to charge: bypasses the metered path.
                return self._source.neighbors_batch(nodes)

        store = audit_store(BuggyStore(featured_graph))
        with pytest.raises(CommAuditError):
            store.neighbors_batch(np.arange(5, dtype=np.int64), CommMeter())

    def test_sparsified_store_audits_weighted_payload(self, featured_graph):
        pg = partition_graph(featured_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=True)
        sparsified = [
            sparsify_with_level(pg.local_graph(p), 0.5,
                                rng=np.random.default_rng(p))
            for p in range(2)
        ]
        store = audit_store(SparsifiedRemoteStore(
            featured_graph, sparsified, pg.assignment))
        meter = CommMeter()
        nodes = np.arange(featured_graph.num_nodes, dtype=np.int64)
        nbrs, _, _ = store.neighbors_batch(nodes, meter)
        assert meter.current.structure_bytes == structure_nbytes(
            nbrs.size, nodes.size, weighted=True)
        with pytest.raises(CommAuditError):
            store.neighbors_batch(nodes, None)

    def test_complete_path_audited_through_view(self, featured_graph):
        pg = partition_graph(featured_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=False)
        meter = CommMeter()
        view = WorkerGraphView(
            pg, 0, remote=audit_store(RemoteGraphStore(featured_graph)),
            meter=meter)
        nodes = np.arange(featured_graph.num_nodes, dtype=np.int64)
        nbrs, _, _ = view.neighbors_batch(nodes)
        assert nbrs.size == featured_graph.num_directed_edges
        assert meter.current.structure_bytes > 0

    def test_view_with_audited_store_meter_none_trips(self, featured_graph):
        pg = partition_graph(featured_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=False)
        view = WorkerGraphView(
            pg, 0, remote=audit_store(RemoteGraphStore(featured_graph)),
            meter=None)
        foreign = np.arange(featured_graph.num_nodes, dtype=np.int64)
        with pytest.raises(CommAuditError):
            view.neighbors_batch(foreign)

    def test_audit_store_idempotent_and_transparent(self, featured_graph):
        store = RemoteGraphStore(featured_graph)
        wrapped = audit_store(store)
        assert isinstance(wrapped, AuditedStore)
        assert audit_store(wrapped) is wrapped
        assert audit_store(None) is None
        assert wrapped.complete is True  # attribute passthrough
        assert wrapped.weighted is False
