"""Hits@K / AUC metrics and the Evaluator protocol."""

import numpy as np
import pytest

from repro.eval import (
    EvalResult,
    Evaluator,
    accuracy_at_threshold,
    auc,
    hits_at_k,
    score_pairs,
)
from repro.nn import build_model


class TestHitsAtK:
    def test_all_positives_above(self):
        pos = np.array([10.0, 9.0])
        neg = np.arange(200.0) / 100.0
        assert hits_at_k(pos, neg, k=100) == 1.0

    def test_none_above(self):
        pos = np.array([-1.0])
        neg = np.arange(200.0)
        assert hits_at_k(pos, neg, k=100) == 0.0

    def test_threshold_is_kth_highest(self):
        neg = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        pos = np.array([3.5, 4.5])
        # k=2: threshold = 4.0; only 4.5 beats it strictly.
        assert hits_at_k(pos, neg, k=2) == 0.5

    def test_strictly_greater(self):
        neg = np.array([1.0, 2.0])
        pos = np.array([2.0])
        assert hits_at_k(pos, neg, k=1) == 0.0

    def test_fewer_negatives_than_k(self):
        assert hits_at_k(np.array([0.0]), np.array([5.0]), k=100) == 1.0

    def test_empty_positives_rejected(self):
        with pytest.raises(ValueError):
            hits_at_k(np.array([]), np.array([1.0]))

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            hits_at_k(np.array([1.0]), np.array([1.0]), k=0)

    def test_monotone_in_k(self, rng):
        pos = rng.standard_normal(100)
        neg = rng.standard_normal(500)
        values = [hits_at_k(pos, neg, k=k) for k in (10, 50, 100, 400)]
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestAUC:
    def test_perfect_separation(self):
        assert auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_inverted(self):
        assert auc(np.array([0.0]), np.array([1.0])) == 0.0

    def test_random_is_half(self, rng):
        pos = rng.standard_normal(3000)
        neg = rng.standard_normal(3000)
        assert auc(pos, neg) == pytest.approx(0.5, abs=0.03)

    def test_ties_half_credit(self):
        assert auc(np.array([1.0]), np.array([1.0])) == 0.5

    def test_matches_sklearn_formula(self, rng):
        # Cross-check against a brute-force pairwise computation.
        pos = rng.standard_normal(50)
        neg = rng.standard_normal(80)
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        assert auc(pos, neg) == pytest.approx(wins / (50 * 80))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            auc(np.array([]), np.array([1.0]))


class TestAccuracyAtThreshold:
    def test_balanced(self):
        acc = accuracy_at_threshold(np.array([1.0, -1.0]),
                                    np.array([-1.0, -2.0]))
        assert acc == 0.75


class TestEvaluator:
    @pytest.fixture
    def model(self, small_split):
        return build_model("sage", small_split.train_graph.feature_dim,
                           16, num_layers=2, seed=0)

    def test_score_pairs_shape(self, model, small_split, rng):
        pairs = small_split.val_pos[:7]
        scores = score_pairs(model, small_split.train_graph, pairs,
                             fanouts=[5, 3], rng=rng)
        assert scores.shape == (7,)
        assert np.all(np.isfinite(scores))

    def test_score_pairs_batching_consistent(self, model, small_split):
        pairs = small_split.val_pos[:10]
        a = score_pairs(model, small_split.train_graph, pairs,
                        fanouts=[-1, -1],
                        rng=np.random.default_rng(0), batch_size=3)
        b = score_pairs(model, small_split.train_graph, pairs,
                        fanouts=[-1, -1],
                        rng=np.random.default_rng(0), batch_size=100)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_validate_and_test(self, model, small_split, rng):
        ev = Evaluator(small_split, fanouts=[5, 3], k=20, rng=rng)
        val = ev.validate(model)
        test = ev.test(model)
        assert isinstance(val, EvalResult) and isinstance(test, EvalResult)
        assert 0.0 <= val.hits <= 1.0
        assert 0.0 <= test.auc <= 1.0
        assert val.k == 20

    def test_model_left_in_train_mode(self, model, small_split, rng):
        ev = Evaluator(small_split, fanouts=[5, 3], k=20, rng=rng)
        model.train()
        ev.validate(model)
        assert model.training
