"""Facade-level streaming: ``Session.stream`` / ``repro.run(stream=)``.

Covers the staleness contract (satellite b): once ``stream()`` has
mutated the graph, the session's static artifacts — ``score()`` and
``export()`` — must refuse with the typed ``StaleArtifactError``, and
an in-place split mutation trips the same guard via the stored
fingerprint.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import Session
from repro.graph import split_edges, synthetic_lp_graph
from repro.stream import StaleArtifactError, StreamConfig, StreamReport

STREAM = dict(ticks=2, seed=7, requests_per_tick=8, inserts_per_tick=3.0,
              deletes_per_tick=1.0, drifts_per_tick=1.0, embed_batch=16)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(23)
    return synthetic_lp_graph(num_nodes=90, target_edges=300,
                              feature_dim=12, num_communities=3, rng=rng)


@pytest.fixture(scope="module")
def split(graph):
    return split_edges(graph, rng=np.random.default_rng(23))


def _trained(graph, split, backend="serial"):
    return (Session(graph, split).partition(2).framework("psgd_pa")
            .backend(backend).scale("smoke")
            .configure(epochs=1, hidden_dim=12))


class TestSessionStream:
    def test_stream_returns_report(self, graph, split):
        session = _trained(graph, split)
        session.train()
        report = session.stream(StreamConfig(**STREAM))
        assert isinstance(report, StreamReport)
        assert len(report.records) == STREAM["ticks"]
        assert report.train_result is session.result

    def test_knobs_and_dict_forms_agree(self, graph, split):
        session = _trained(graph, split)
        session.train()
        a = session.stream(**STREAM)
        session._stale_reason = None  # same weights, fresh stream
        b = session.stream(dict(STREAM))
        assert a.digest() == b.digest()

    def test_config_plus_knobs_rejected(self, graph, split):
        session = _trained(graph, split)
        session.train()
        with pytest.raises(ValueError, match="not alongside"):
            session.stream(StreamConfig(**STREAM), ticks=3)

    def test_stream_before_train_raises(self, split):
        with pytest.raises(RuntimeError, match="train"):
            Session(split).stream(StreamConfig(**STREAM))

    def test_digest_matches_across_backends(self, graph, split):
        digests = set()
        for backend in ("serial", "thread"):
            session = _trained(graph, split, backend)
            session.train()
            digests.add(session.stream(StreamConfig(**STREAM)).digest())
        assert len(digests) == 1


class TestStaleness:
    def test_score_after_stream_raises(self, graph, split):
        session = _trained(graph, split)
        session.train()
        session.stream(StreamConfig(**STREAM))
        with pytest.raises(StaleArtifactError, match="mutated by"):
            session.score(np.array([[0, 1]]))

    def test_export_after_stream_raises(self, graph, split):
        session = _trained(graph, split)
        session.train()
        session.stream(StreamConfig(**STREAM))
        with pytest.raises(StaleArtifactError, match="export"):
            session.export()

    def test_score_and_export_work_when_fresh(self, graph, split):
        session = _trained(graph, split)
        session.train()
        inf = session.score(np.array([[0, 1], [2, 3]]))
        assert inf.scores.shape == (2,)
        artifact = session.export()
        assert artifact.num_nodes == graph.num_nodes

    def test_in_place_split_mutation_detected(self, graph):
        split = split_edges(graph, rng=np.random.default_rng(23))
        session = _trained(graph, split)
        session.train()
        split.train_pos[0, 0] ^= 1  # mutate under the session's feet
        try:
            with pytest.raises(StaleArtifactError, match="fingerprint"):
                session.score(np.array([[0, 1]]))
        finally:
            split.train_pos[0, 0] ^= 1

    def test_no_op_stream_leaves_session_fresh(self, graph, split):
        quiet = dict(STREAM, inserts_per_tick=0.0, deletes_per_tick=0.0,
                     drifts_per_tick=0.0)
        session = _trained(graph, split)
        session.train()
        report = session.stream(StreamConfig(**quiet))
        applied = (report.counters["inserted"] + report.counters["deleted"]
                   + report.counters["drifted"])
        assert applied == 0
        session.score(np.array([[0, 1]]))  # still servable


class TestRunStream:
    def test_run_stream_returns_report(self, split):
        report = repro.run("psgd_pa", split=split, workers=2,
                           scale="smoke", hidden_dim=12, epochs=1,
                           stream=StreamConfig(**STREAM))
        assert isinstance(report, StreamReport)
        assert report.train_result is not None
        assert report.train_result.num_workers == 2

    def test_run_stream_matches_session_path(self, graph, split):
        via_run = repro.run("psgd_pa", split=split, workers=2,
                            scale="smoke", hidden_dim=12, epochs=1,
                            stream=dict(STREAM))
        session = _trained(graph, split)
        session.train()
        via_session = session.stream(StreamConfig(**STREAM))
        assert via_run.digest() == via_session.digest()

    def test_run_stream_rejects_resume_combo(self, split, tmp_path):
        with pytest.raises(ValueError, match="cannot be combined"):
            repro.run("psgd_pa", split=split, workers=2,
                      stream=dict(STREAM), resume=str(tmp_path))
