"""run_all report orchestrator and CLI 'all' path."""

import json

import pytest

from repro.experiments import (
    EXTENSION_EXPERIMENTS,
    PAPER_EXPERIMENTS,
    ExperimentScale,
    run_all,
    save_report,
)


class TestRegistry:
    def test_paper_experiments_complete(self):
        expected = {"fig3", "fig4", "fig6", "table2", "fig8", "fig9",
                    "fig10", "fig11", "fig12", "fig13", "table3", "fig14"}
        assert set(PAPER_EXPERIMENTS) == expected

    def test_extensions_registered(self):
        assert "sparsifier_ablation" in EXTENSION_EXPERIMENTS
        assert "negative_sampler_ablation" in EXTENSION_EXPERIMENTS


class TestRunAll:
    def test_subset_runs(self):
        scale = ExperimentScale.smoke()
        report = run_all(scale=scale, only=["fig9", "fig13"])
        assert set(report) == {"fig9", "fig13"}
        for entry in report.values():
            assert entry["rows"]
            assert entry["seconds"] > 0

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_all(only=["fig99"])

    def test_progress_callback(self):
        scale = ExperimentScale.smoke()
        seen = []
        run_all(scale=scale, only=["fig13"], progress=seen.append)
        assert seen == ["fig13"]

    def test_save_report_json(self, tmp_path):
        scale = ExperimentScale.smoke()
        report = run_all(scale=scale, only=["fig9"])
        path = str(tmp_path / "report.json")
        save_report(report, path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert "fig9" in loaded
        assert loaded["fig9"]["rows"]


class TestCLIAll:
    def test_cli_all_with_json(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import report as report_mod
        from repro.experiments.__main__ import main

        # Patch run_all so the CLI test stays fast.
        def fake_run_all(scale=None, include_extensions=False,
                         progress=None):
            if progress:
                progress("fig9")
            return {"fig9": {"rows": [{"a": 1}], "seconds": 0.1}}

        monkeypatch.setattr(report_mod, "run_all", fake_run_all)
        path = str(tmp_path / "out.json")
        assert main(["all", "--json", path]) == 0
        with open(path) as fh:
            assert "fig9" in json.load(fh)
