"""Serving-path version consistency under mid-workload hot swaps.

Regression suite for the torn-batch bug class: a request admitted
before a swap point must score *entirely* against the pre-swap
version — even when its micro-batch flushes after the swap — and a
flush whose batch straddles the swap must split into
version-homogeneous groups rather than mixing embedding tables.
"""

import numpy as np
import pytest

from repro.graph import synthetic_lp_graph
from repro.nn.models import build_model
from repro.serve import ServingCluster, OpenLoopWorkload, synthetic_requests
from repro.stream import MutableGraph, Reembedder, StreamEvent

NODES, DIM = 40, 6
SWAP_SEQ = 12
NUM_REQUESTS = 30


def _artifacts():
    """Two layout-compatible artifacts with genuinely different tables."""
    graph = synthetic_lp_graph(NODES, 120, feature_dim=DIM,
                               rng=np.random.default_rng(4))
    model = build_model("sage", DIM, hidden_dim=8, num_layers=2, seed=4)
    assignment = np.arange(NODES, dtype=np.int64) % 3
    reembedder = Reembedder(model, batch_size=8)
    reembedder.full_refresh(graph)
    old = reembedder.make_artifact(graph, assignment, 3)
    mutable = MutableGraph(graph)
    delta = mutable.apply(
        [StreamEvent("drift", 0, u=n, scale=0.8) for n in range(8)], 0)
    snap = mutable.snapshot()
    reembedder.frontier_refresh(snap, delta.touched_nodes())
    new = reembedder.make_artifact(snap, assignment, 3)
    assert old.model_version != new.model_version
    assert not np.array_equal(old.embedding_table(),
                              new.embedding_table())
    return old, new


def _workload(seed=4):
    requests = synthetic_requests(NUM_REQUESTS, NODES, seed=seed,
                                  topk_fraction=0.0)
    return OpenLoopWorkload(requests, rate_rps=5000.0, seed=seed + 13)


def _serve(artifact, swaps=None, register=None, backend="serial"):
    cluster = ServingCluster(artifact, backend=backend, max_batch=5,
                             max_delay_s=5e-3, max_queue=64)
    if register is not None:
        cluster.register_version(register)
    with cluster:
        report = cluster.serve(_workload(), swaps=swaps)
    return cluster, report


class TestAdmissionTimePinning:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_pre_swap_requests_score_against_old_version(self, backend):
        old, new = _artifacts()
        _, baseline_old = _serve(old, backend=backend)
        _, baseline_new = _serve(new, backend=backend)
        cluster, swapped = _serve(
            old, swaps=[(SWAP_SEQ, new.model_version)], register=new,
            backend=backend)
        for outcome in swapped.outcomes:
            if outcome.status != "ok":
                continue
            baseline = (baseline_old if outcome.index < SWAP_SEQ
                        else baseline_new)
            expected = baseline.outcomes[outcome.index].score
            assert outcome.score == expected, (
                f"request {outcome.index} scored against the wrong "
                f"version (pinned "
                f"{cluster.pinned_version(outcome.index)[:8]})")

    def test_pinning_is_recorded_per_request(self):
        old, new = _artifacts()
        cluster, report = _serve(old,
                                 swaps=[(SWAP_SEQ, new.model_version)],
                                 register=new)
        for outcome in report.outcomes:
            pinned = cluster.pinned_version(outcome.index)
            expected = (old.model_version if outcome.index < SWAP_SEQ
                        else new.model_version)
            assert pinned == expected

    def test_no_swap_is_byte_identical_to_legacy_path(self):
        """A swap-free serve must not be perturbed by the pinning
        machinery at all."""
        old, _ = _artifacts()
        _, a = _serve(old)
        _, b = _serve(old, swaps=[])
        assert a.digest() == b.digest()


class TestTornBatches:
    def test_straddling_flush_splits_into_homogeneous_groups(self,
                                                             monkeypatch):
        old, new = _artifacts()
        flushes = []
        original = ServingCluster._execute

        def spy(self, outcomes, batch_flushes):
            flushes.extend(batch_flushes)
            return original(self, outcomes, batch_flushes)

        monkeypatch.setattr(ServingCluster, "_execute", spy)
        cluster, _ = _serve(old, swaps=[(SWAP_SEQ, new.model_version)],
                            register=new)
        mixed = [f for f in flushes
                 if {cluster.pinned_version(i) for i in f.seqs}
                 == {old.model_version, new.model_version}]
        assert mixed, ("no flush straddled the swap point; regression "
                       "coverage needs one — tune SWAP_SEQ/max_batch")

    def test_swap_target_must_be_registered(self):
        old, new = _artifacts()
        cluster = ServingCluster(old, max_batch=4)
        with pytest.raises(ValueError):
            cluster.serve(_workload(),
                          swaps=[(SWAP_SEQ, new.model_version)])

    def test_incompatible_layout_rejected_at_registration(self):
        old, _ = _artifacts()
        other = synthetic_lp_graph(NODES, 120, feature_dim=DIM,
                                   rng=np.random.default_rng(9))
        model = build_model("sage", DIM, hidden_dim=8, num_layers=2,
                            seed=9)
        reembedder = Reembedder(model, batch_size=8)
        reembedder.full_refresh(other)
        moved = reembedder.make_artifact(
            other, (np.arange(NODES, dtype=np.int64) + 1) % 3, 3)
        cluster = ServingCluster(old, max_batch=4)
        with pytest.raises(ValueError):
            cluster.register_version(moved)

    def test_activate_switches_default_version(self):
        old, new = _artifacts()
        cluster = ServingCluster(old, max_batch=4)
        cluster.register_version(new)
        cluster.activate(new.model_version)
        assert cluster.active_version == new.model_version
        np.testing.assert_array_equal(cluster.table,
                                      new.embedding_table())
        with pytest.raises(ValueError):
            cluster.activate("not-registered")
