"""Durable checkpoint/resume: crash-safety and bit-identical resumption.

Covers the :mod:`repro.checkpoint` contract end to end:

* crash mid-training (exception and real SIGKILL) → resume produces a
  bit-identical ``TrainResult.digest()`` versus the uninterrupted run,
  across backends and every sync mode;
* mid-epoch snapshots round-trip exactly (worker models, sampler RNG
  streams, CommMeter ledgers, ParameterServer state, evaluator RNG);
* torn writes are detected and rolled back to the previous durable
  snapshot — and the rolled-back resume is *still* bit-identical;
* every failure mode raises its typed error with an actionable
  message;
* lint rule R110 keeps raw writes out of the persistence paths.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro import Session, SessionStateError
from repro.checkpoint import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    CheckpointNotFoundError,
    load_checkpoint,
    rebuild_trainer,
)
from repro.checkpoint.state import capture_trainer_state
from repro.checkpoint.store import CheckpointStore
from repro.core.frameworks import FRAMEWORKS, build_trainer
from repro.distributed import TrainConfig
from repro.distributed import trainer as trainer_mod
from repro.graph import split_edges, synthetic_lp_graph
from repro.lint import lint_source

SYNC_MODES = ("barrier", "ps", "async", "local_sgd")
SEED = 5
EPOCHS = 3


@pytest.fixture(scope="module")
def split():
    """One tiny deterministic link-prediction workload for the module."""
    rng = np.random.default_rng(SEED)
    graph = synthetic_lp_graph(num_nodes=150, target_edges=520,
                               feature_dim=8, num_communities=4, rng=rng)
    return split_edges(graph, rng=rng)


def _config(sync: str = "barrier", backend: str = "serial",
            **overrides) -> TrainConfig:
    defaults = dict(hidden_dim=8, num_layers=2, fanouts=(4, 4),
                    batch_size=64, epochs=EPOCHS, seed=SEED, sync=sync,
                    backend=backend, eval_every=EPOCHS, observe=False)
    defaults.update(overrides)
    return TrainConfig(**defaults)


def _trainer(split, config):
    return build_trainer(FRAMEWORKS["splpg"], split, 2, config,
                         rng=np.random.default_rng(SEED))


class _PlannedCrash(RuntimeError):
    """Raised by a round hook to abort the coordinator loop."""


def _install_crash(epoch: int, rnd: int):
    """Arm a round hook that crashes at exactly ``(epoch, rnd)``."""

    def hook(_trainer, e: int, r: int) -> None:
        if e == epoch and r == rnd:
            raise _PlannedCrash(f"planned crash at ({e}, {r})")

    return trainer_mod.set_round_hook(hook)


def _crash_then_resume(split, config, ckpt_dir, crash_at=(1, 1)):
    """Train-with-crash, then resume from disk; returns the result."""
    previous = _install_crash(*crash_at)
    try:
        with pytest.raises(_PlannedCrash):
            _trainer(split, config).train()
    finally:
        trainer_mod.set_round_hook(previous)
    meta, state = load_checkpoint(ckpt_dir)
    assert meta["epoch"] == crash_at[0] - 1
    return rebuild_trainer(meta, state, split).train()


class TestCrashResumeBitIdentity:
    @pytest.mark.parametrize("sync", SYNC_MODES)
    def test_resume_digest_matches_uninterrupted(self, split, sync,
                                                 tmp_path):
        """Crash at (1, 1) on every backend; one digest everywhere.

        The uninterrupted baseline is computed once per sync mode, so
        the assertion gates crash-resume bit-identity and
        cross-backend bit-identity at the same time.
        """
        baseline = _trainer(split, _config(sync)).train().digest()
        for backend in ("serial", "thread", "process"):
            ckpt_dir = str(tmp_path / backend)
            config = _config(sync, backend, checkpoint_dir=ckpt_dir,
                             checkpoint_every=1)
            resumed = _crash_then_resume(split, config, ckpt_dir)
            assert resumed.digest() == baseline, (
                f"{backend}/{sync}: resumed digest diverged from the "
                "uninterrupted run")

    def test_sigkill_resume_bit_identity(self):
        """A real SIGKILL of a subprocess coordinator, not an exception.

        ``run_kill_driver`` forks a coordinator that kills its own
        process group mid-epoch, asserts death-by-signal, resumes in a
        second coordinator and compares digests; it raises on any
        violation.
        """
        from repro.faults.killdriver import run_kill_driver

        outcomes = run_kill_driver(backends=("serial",),
                                   syncs=("barrier", "ps"), workers=2,
                                   epochs=3, seed=31, verbose=False)
        assert [o.ok for o in outcomes] == [True, True]
        assert all(o.resumed_from is not None for o in outcomes)


class TestMidEpochRoundTrip:
    @pytest.mark.parametrize("sync", SYNC_MODES)
    def test_mid_epoch_snapshot_round_trips(self, split, sync, tmp_path):
        """Snapshot at round 1 of epoch 1; rebuild must match exactly."""
        ckpt_dir = str(tmp_path / "mid")
        store = CheckpointStore(ckpt_dir)
        ref: dict = {}

        def hook(trainer, epoch: int, rnd: int) -> None:
            if epoch != 1 or rnd != 1 or ref:
                return
            state = capture_trainer_state(
                trainer, epoch=epoch, rnd=rnd,
                faults=trainer.fault_controller)
            store.write(state, epoch=epoch, rnd=rnd)
            ref["models"] = [
                {k: v.copy() for k, v in w.model.state_dict().items()}
                for w in trainer.workers]
            ref["rngs"] = [w.sampler.rng.bit_generator.state
                           for w in trainer.workers]
            ref["meters"] = [
                [r.to_dict() for r in m.epochs] + [m.current.to_dict()]
                for m in trainer.meters]
            ref["eval_rng"] = trainer.evaluator.rng.bit_generator.state
            if trainer.parameter_server is not None:
                ref["server_version"] = trainer.parameter_server.version

        previous = trainer_mod.set_round_hook(hook)
        try:
            _trainer(split, _config(sync)).train()
        finally:
            trainer_mod.set_round_hook(previous)
        assert ref, "the snapshot hook never fired"

        meta, state = load_checkpoint(ckpt_dir)
        assert (meta["epoch"], meta["round"]) == (1, 1)
        rebuilt = rebuild_trainer(meta, state, split)
        for i, worker in enumerate(rebuilt.workers):
            got = worker.model.state_dict()
            for name, value in ref["models"][i].items():
                np.testing.assert_array_equal(got[name], value)
            assert worker.sampler.rng.bit_generator.state == \
                ref["rngs"][i]
        assert [[r.to_dict() for r in m.epochs] + [m.current.to_dict()]
                for m in rebuilt.meters] == ref["meters"]
        assert rebuilt.evaluator.rng.bit_generator.state == \
            ref["eval_rng"]
        if sync == "ps":
            assert rebuilt.parameter_server.version == \
                ref["server_version"]


class TestTornWrites:
    def _snapshot_files(self, ckpt_dir):
        with open(os.path.join(ckpt_dir, "manifest.json"),
                  encoding="utf-8") as fh:
            manifest = json.load(fh)
        return [os.path.join(ckpt_dir, e["file"])
                for e in manifest["entries"]]

    def test_torn_newest_rolls_back_and_stays_bit_identical(
            self, split, tmp_path):
        """Truncate the newest snapshot: resume from the previous one."""
        baseline = _trainer(split, _config()).train().digest()
        ckpt_dir = str(tmp_path / "torn")
        _trainer(split, _config(checkpoint_dir=ckpt_dir,
                                checkpoint_every=1)).train()
        files = self._snapshot_files(ckpt_dir)
        assert len(files) == 2  # keep=2 of the EPOCHS snapshots
        torn = open(files[-1], "rb").read()[:100]
        with open(files[-1], "wb") as fh:
            fh.write(torn)

        meta, state = load_checkpoint(ckpt_dir)
        assert meta["rolled_back"] == 1
        assert meta["epoch"] == EPOCHS - 2
        resumed = rebuild_trainer(meta, state, split).train()
        assert resumed.digest() == baseline

    def test_every_snapshot_corrupt_raises(self, split, tmp_path):
        ckpt_dir = str(tmp_path / "corrupt")
        _trainer(split, _config(checkpoint_dir=ckpt_dir,
                                checkpoint_every=1)).train()
        for path in self._snapshot_files(ckpt_dir):
            with open(path, "wb") as fh:
                fh.write(b"not a snapshot")
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_checkpoint(ckpt_dir)


class TestTypedErrors:
    def test_nonexistent_dir(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError, match="does not exist"):
            load_checkpoint(str(tmp_path / "never-written"))

    def test_foreign_dir(self, tmp_path):
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / "data.txt").write_text("hello")
        with pytest.raises(CheckpointNotFoundError,
                           match="not a repro checkpoint directory"):
            load_checkpoint(str(foreign))

    def test_session_resume_propagates_not_found(self, split, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            Session(split).resume(str(tmp_path / "missing"))

    def test_wrong_split_is_rejected(self, split, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        _trainer(split, _config(checkpoint_dir=ckpt_dir,
                                checkpoint_every=1)).train()
        rng = np.random.default_rng(SEED + 1)
        other = split_edges(synthetic_lp_graph(
            num_nodes=150, target_edges=520, feature_dim=8,
            num_communities=4, rng=rng), rng=rng)
        meta, state = load_checkpoint(ckpt_dir)
        with pytest.raises(CheckpointMismatchError, match="fingerprint"):
            rebuild_trainer(meta, state, other)

    def test_wrong_framework_or_workers_rejected(self, split, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        _trainer(split, _config(checkpoint_dir=ckpt_dir,
                                checkpoint_every=1)).train()
        meta, state = load_checkpoint(ckpt_dir)
        with pytest.raises(CheckpointMismatchError, match="framework"):
            rebuild_trainer(meta, state, split, framework="psgd_pa")
        with pytest.raises(CheckpointMismatchError, match="workers"):
            rebuild_trainer(meta, state, split, workers=5)

    def test_run_resume_rejects_overrides(self, split, tmp_path):
        with pytest.raises(ValueError, match="not allowed"):
            repro.run(split=split, resume=str(tmp_path / "any"),
                      epochs=9)

    def test_export_before_train_raises(self, split):
        with pytest.raises(SessionStateError, match="train"):
            Session(split).export()

    def test_score_before_train_raises(self, split):
        with pytest.raises(SessionStateError, match="train"):
            Session(split).score(np.array([[0, 1]]))

    def test_checkpoint_every_validated(self, split):
        with pytest.raises(ValueError, match="checkpoint_every"):
            _config(checkpoint_dir="x", checkpoint_every=0)
        with pytest.raises(ValueError, match="every"):
            Session(split).checkpoint("x", every=0)


class TestSessionResume:
    def test_session_checkpoint_resume_and_export(self, split, tmp_path):
        """The whole front-door flow: checkpoint, resume, export."""
        ckpt_dir = str(tmp_path / "sess")
        trained = (Session(split).partition(2)
                   .configure(hidden_dim=8, num_layers=2, fanouts=(4, 4),
                              batch_size=64, epochs=EPOCHS, seed=SEED,
                              eval_every=EPOCHS, observe=False)
                   .checkpoint(ckpt_dir, every=1))
        result = trained.train()

        resumed = Session(split).resume(ckpt_dir)
        assert resumed.digest() == result.digest()

        restored = Session(split).restore(ckpt_dir)
        assert restored.export().checksum() == \
            trained.export().checksum()

    def test_run_resume_continues(self, split, tmp_path):
        ckpt_dir = str(tmp_path / "run")
        config_kwargs = dict(hidden_dim=8, num_layers=2, fanouts=(4, 4),
                             batch_size=64, epochs=EPOCHS, seed=SEED,
                             eval_every=EPOCHS, observe=False)
        baseline = repro.run(split=split, workers=2,
                             **config_kwargs)
        repro.run(split=split, workers=2, checkpoint_dir=ckpt_dir,
                  checkpoint_every=1, **config_kwargs)
        resumed = repro.run(split=split, resume=ckpt_dir)
        assert resumed.digest() == baseline.digest()


class TestR110PersistenceLint:
    MODPATH = "repro/checkpoint/newmod.py"

    def _r110(self, code, modpath=MODPATH):
        return [f for f in lint_source(code, modpath)
                if f.rule_id == "R110"]

    def test_flags_write_mode_open(self):
        code = 'fh = open(p, "w")\n'
        assert len(self._r110(code)) == 1
        assert "atomic" in self._r110(code)[0].message

    def test_flags_numpy_save_and_raw_state_dict(self):
        code = ("np.save(p, arr)\n"
                "np.savez_compressed(p, **payload)\n"
                "save_state_dict(payload, p)\n"
                "serialize.save_state_dict(payload, p)\n")
        assert len(self._r110(code)) == 4

    def test_read_open_and_atomic_helpers_pass(self):
        code = ('fh = open(p, "r")\n'
                "fh2 = open(p)\n"
                "atomic_save_state_dict(payload, p)\n"
                "atomic_write_json(p, doc)\n")
        assert self._r110(code) == []

    def test_io_module_and_outside_paths_exempt(self):
        code = 'fh = open(p, "wb")\n'
        assert self._r110(code, "repro/checkpoint/io.py") == []
        assert self._r110(code, "repro/graph/io.py") == []
        assert len(self._r110(code, "repro/serve/artifact.py")) == 1
