"""StreamDriver: cross-backend digests, faults, churn, resume."""

import numpy as np
import pytest

from repro.faults import FaultEvent, FaultPlan
from repro.graph import synthetic_lp_graph
from repro.nn.models import build_model
from repro.obs import RunObserver
from repro.partition.registry import PartitionSpec
from repro.stream import StreamConfig, StreamDriver
from repro.stream.errors import StreamStateError

BACKENDS = ("serial", "thread", "process")

NODES, DIM = 50, 8
MODEL_SPEC = {"gnn_type": "sage", "in_dim": DIM, "hidden_dim": 8,
              "num_layers": 2, "seed": 5}


def _fixture():
    graph = synthetic_lp_graph(NODES, 150, feature_dim=DIM,
                               rng=np.random.default_rng(5))
    model = build_model(**MODEL_SPEC)
    return model, graph, PartitionSpec("metis", mirror=True)


def _config(**overrides):
    base = dict(ticks=3, seed=5, requests_per_tick=10,
                inserts_per_tick=4.0, deletes_per_tick=1.0,
                drifts_per_tick=1.0, embed_batch=16)
    base.update(overrides)
    return StreamConfig(**base)


def _run(config, backend="serial", observer=None):
    model, graph, spec = _fixture()
    driver = StreamDriver(model, graph, spec, 3, config,
                          backend=backend, observer=observer)
    return driver.run()


class TestDeterminism:
    def test_digest_identical_across_backends(self):
        digests = {name: _run(_config(), name).digest()
                   for name in BACKENDS}
        assert len(set(digests.values())) == 1, digests

    def test_digest_identical_under_faults(self):
        plan = FaultPlan(events=[
            FaultEvent(kind="crash", epoch=1, round=3, worker=1),
            FaultEvent(kind="store_outage", epoch=2, round=2,
                       rounds=2)])
        digests = {name: _run(_config(fault_plan=plan), name).digest()
                   for name in BACKENDS}
        assert len(set(digests.values())) == 1, digests

    def test_faults_change_the_digest(self):
        plan = FaultPlan(events=[
            FaultEvent(kind="crash", epoch=0, round=1, worker=0)])
        assert _run(_config()).digest() != \
            _run(_config(fault_plan=plan)).digest()

    def test_repeat_runs_are_identical(self):
        assert _run(_config()).digest() == _run(_config()).digest()


class TestTickLoop:
    def test_hot_swap_happens_after_warmup(self):
        report = _run(_config(ticks=4))
        assert report.counters["swaps"] >= 1
        swapped = [r for r in report.records if r.swapped]
        assert swapped and all(r.swap_latency_s >= 0.0
                               for r in swapped)

    def test_churn_cell_rebalances_and_rolls_back(self):
        report = _run(_config(rebalance_threshold=1.01, auc_floor=1.5))
        assert report.counters["rebalances"] >= 1
        assert report.counters["rollbacks"] >= 1
        assert report.counters["swaps"] == 0
        rolled = [r for r in report.records if r.rolled_back]
        assert rolled and all("below floor" in r.gate_reason
                              for r in rolled)

    def test_rollback_keeps_prior_version_serving(self):
        report = _run(_config(auc_floor=1.5, rebalance_threshold=0.0))
        versions = [r.model_version for r in report.records]
        assert len(set(versions)) == 1  # nothing ever promoted
        assert report.final_version == versions[0]

    def test_report_shape_and_comm_ledger(self):
        report = _run(_config())
        assert len(report.records) == 3
        doc = report.to_dict()
        assert doc["digest"] == report.digest()
        assert set(doc["comm"]) == {
            "stream_feature_bytes", "stream_structure_bytes",
            "stream_sync_bytes", "serve_feature_bytes",
            "serve_structure_bytes", "serve_sync_bytes"}
        assert report.comm["stream_feature_bytes"] >= 0
        assert report.counters["requests"] == 30
        assert "tick" in report.summary()

    def test_observer_counters(self):
        obs = RunObserver()
        report = _run(_config(ticks=4), observer=obs)
        doc = obs.metrics.to_dict()
        assert doc["stream.ticks"]["value"] == 4
        assert doc["stream.events"]["value"] > 0
        if report.counters["swaps"]:
            assert "stream.swap_latency_s" in doc

    def test_full_refresh_mode_matches_record_flags(self):
        report = _run(_config(refresh="full"))
        assert all(r.refreshed for r in report.records)
        assert all(r.reembed_rows == NODES
                   for r in report.records if r.refreshed)


class TestCheckpointResume:
    """Satellite: mid-stream resume replays the remaining plan to the
    uninterrupted run's digest — on every backend."""

    def _interrupted_dir(self, tmp_path, stop_after=2):
        model, graph, spec = _fixture()
        config = _config(ticks=4, checkpoint_dir=str(tmp_path),
                         checkpoint_every=1)
        driver = StreamDriver(model, graph, spec, 3, config,
                              backend="serial", model_spec=MODEL_SPEC)
        driver._setup()
        for tick in range(stop_after):
            driver._run_tick(tick)
            driver._next_tick = tick + 1
            driver._write_checkpoint(tick)
        # The process "crashes" here: the driver object is dropped.

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_resume_matches_uninterrupted_digest(self, tmp_path,
                                                 backend):
        uninterrupted = _run(_config(ticks=4), backend).digest()
        self._interrupted_dir(tmp_path / "ckpt")
        resumed = StreamDriver.resume(tmp_path / "ckpt",
                                      backend=backend)
        assert resumed.run().digest() == uninterrupted

    def test_resume_after_completion_reproduces_report(self, tmp_path):
        model, graph, spec = _fixture()
        config = _config(ticks=3, checkpoint_dir=str(tmp_path),
                         checkpoint_every=1)
        driver = StreamDriver(model, graph, spec, 3, config,
                              backend="serial", model_spec=MODEL_SPEC)
        digest = driver.run().digest()
        resumed = StreamDriver.resume(tmp_path)
        assert resumed.run().digest() == digest

    def test_checkpoint_requires_model_spec(self, tmp_path):
        model, graph, spec = _fixture()
        config = _config(checkpoint_dir=str(tmp_path))
        with pytest.raises(StreamStateError):
            StreamDriver(model, graph, spec, 3, config)

    def test_resume_with_churn_and_faults(self, tmp_path):
        """Rebalances, rollbacks and fault windows all replay."""
        plan = FaultPlan(events=[
            FaultEvent(kind="crash", epoch=3, round=2, worker=1)])
        model, graph, spec = _fixture()
        config = _config(ticks=4, rebalance_threshold=1.01,
                         auc_floor=1.5, fault_plan=plan)
        uninterrupted = StreamDriver(
            model, graph, spec, 3, config).run().digest()
        ckpt = _config(ticks=4, rebalance_threshold=1.01,
                       auc_floor=1.5, fault_plan=plan,
                       checkpoint_dir=str(tmp_path),
                       checkpoint_every=1)
        model2, graph2, spec2 = _fixture()
        driver = StreamDriver(model2, graph2, spec2, 3, ckpt,
                              model_spec=MODEL_SPEC)
        driver._setup()
        for tick in range(2):
            driver._run_tick(tick)
            driver._next_tick = tick + 1
            driver._write_checkpoint(tick)
        resumed = StreamDriver.resume(tmp_path)
        assert resumed.run().digest() == uninterrupted


class TestValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(refresh="sometimes")
        with pytest.raises(ValueError):
            StreamConfig(ticks=0)
        with pytest.raises(ValueError):
            StreamConfig(swap_fraction=1.5)
        with pytest.raises(ValueError):
            StreamConfig.from_dict({"definitely_not_a_field": 1})

    def test_config_round_trip_with_plans(self):
        plan = FaultPlan(events=[
            FaultEvent(kind="crash", epoch=0, round=0, worker=0)])
        config = _config(fault_plan=plan)
        clone = StreamConfig.from_dict(config.to_dict())
        assert clone.fault_plan.events == plan.events
        assert clone.to_dict() == config.to_dict()

    def test_featureless_graph_rejected(self):
        from repro.graph import Graph
        bare = Graph.from_edges(6, [[0, 1], [1, 2], [2, 3]])
        model, _, spec = _fixture()
        with pytest.raises(Exception):
            StreamDriver(model, bare, spec, 2, _config())

    def test_unknown_backend_rejected(self):
        model, graph, spec = _fixture()
        with pytest.raises(ValueError):
            StreamDriver(model, graph, spec, 3, _config(),
                         backend="gpu_cluster")
