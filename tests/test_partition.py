"""Partitioning: mini-METIS, randomized baselines, worker storage."""

import numpy as np
import pytest

from repro.graph import Graph, load_dataset, synthetic_lp_graph
from repro.partition import (
    PartitionedGraph,
    PartitionSpec,
    edge_cut,
    get_partitioner,
    metis_partition,
    partition_balance,
    partition_graph,
    random_tma_partition,
    registered_partitioners,
    super_tma_partition,
)

#: Snapshot of the built-in registry: every strategy here is exercised
#: by TestEveryRegisteredStrategy, so a newly registered partitioner is
#: automatically covered by the shared invariants.
ALL_STRATEGIES = registered_partitioners()


@pytest.fixture(scope="module")
def community_g():
    rng = np.random.default_rng(7)
    return synthetic_lp_graph(num_nodes=400, target_edges=1600,
                              feature_dim=8, num_communities=8,
                              intra_fraction=0.9, rng=rng)


class TestMetis:
    def test_assignment_covers_all_nodes(self, community_g, rng):
        a = metis_partition(community_g, 4, rng=rng)
        assert a.shape == (community_g.num_nodes,)
        assert set(np.unique(a)) == {0, 1, 2, 3}

    def test_k1_trivial(self, community_g, rng):
        a = metis_partition(community_g, 1, rng=rng)
        assert np.all(a == 0)

    def test_more_parts_than_nodes_rejected(self, rng):
        g = Graph.from_edges(3, [[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            metis_partition(g, 10, rng=rng)

    def test_invalid_k(self, community_g, rng):
        with pytest.raises(ValueError):
            metis_partition(community_g, 0, rng=rng)

    def test_beats_random_cut(self, community_g):
        rng = np.random.default_rng(3)
        metis_cut = edge_cut(community_g,
                             metis_partition(community_g, 4, rng=rng))
        random_cut = edge_cut(community_g,
                              random_tma_partition(community_g, 4, rng=rng))
        assert metis_cut < 0.5 * random_cut

    def test_balance(self, community_g, rng):
        a = metis_partition(community_g, 4, rng=rng, balance_factor=1.10)
        assert partition_balance(a, 4) <= 1.35  # refinement slack

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_various_k(self, community_g, rng, k):
        a = metis_partition(community_g, k, rng=rng)
        assert np.unique(a).size == k

    def test_disconnected_graph(self, rng):
        g = Graph.from_edges(8, [[0, 1], [1, 2], [4, 5], [5, 6]])
        a = metis_partition(g, 2, rng=rng)
        assert a.shape == (8,)

    def test_star_graph_no_infinite_loop(self, rng):
        # Matching stalls on stars; coarsening must terminate.
        g = Graph.from_edges(200, [[0, i] for i in range(1, 200)])
        a = metis_partition(g, 2, rng=rng)
        assert a.shape == (200,)


class TestRandomized:
    def test_random_tma_no_empty_parts(self, community_g, rng):
        a = random_tma_partition(community_g, 8, rng=rng)
        assert np.unique(a).size == 8

    def test_random_tma_roughly_balanced(self, community_g, rng):
        a = random_tma_partition(community_g, 4, rng=rng)
        assert partition_balance(a, 4) < 1.35

    def test_super_tma_cut_between_metis_and_random(self, community_g):
        """SuperTMA keeps mini-clusters intact, so its cut sits between
        METIS (lowest) and RandomTMA (highest)."""
        rng = np.random.default_rng(11)
        cut_metis = edge_cut(community_g,
                             metis_partition(community_g, 4, rng=rng))
        cut_super = edge_cut(community_g,
                             super_tma_partition(community_g, 4, rng=rng))
        cut_random = edge_cut(community_g,
                              random_tma_partition(community_g, 4, rng=rng))
        assert cut_metis < cut_super < cut_random

    def test_super_tma_no_empty_parts(self, community_g, rng):
        a = super_tma_partition(community_g, 4, rng=rng)
        assert np.unique(a).size == 4

    def test_invalid_num_parts(self, community_g, rng):
        with pytest.raises(ValueError):
            random_tma_partition(community_g, 0, rng=rng)
        with pytest.raises(ValueError):
            super_tma_partition(community_g, 0, rng=rng)

    def test_random_tma_num_nodes_equals_num_parts(self):
        """Degenerate case: the empty-partition repair must not empty a
        donor partition (regression: the old repair reassigned an
        arbitrary node, which could steal a partition's only member)."""
        g = Graph.from_edges(6, [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]])
        for seed in range(40):
            a = random_tma_partition(g, 6,
                                     rng=np.random.default_rng(seed))
            assert np.unique(a).size == 6, f"empty partition at seed {seed}"

    def test_random_tma_more_parts_than_nodes_rejected(self):
        g = Graph.from_edges(3, [[0, 1], [1, 2]])
        with pytest.raises(ValueError):
            random_tma_partition(g, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            super_tma_partition(g, 4, rng=np.random.default_rng(0))


class TestPartitionedGraph:
    def test_induced_drops_cross_edges(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=False)
        total_local = sum(p.num_edges for p in pg.parts)
        cut = edge_cut(community_g, pg.assignment)
        assert total_local == community_g.num_edges - cut

    def test_mirrored_duplicates_cross_edges(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=True)
        total_local = sum(p.num_edges for p in pg.parts)
        cut = edge_cut(community_g, pg.assignment)
        assert total_local == community_g.num_edges + cut

    def test_mirrored_full_neighbor_lists(self, community_g, rng):
        """Every owned node's local degree equals its global degree."""
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=True)
        for part in range(4):
            owned = pg.owned_nodes(part)
            local = pg.local_graph(part)
            assert np.array_equal(local.degrees[owned],
                                  community_g.degrees[owned])

    def test_induced_fragment_neighbor_lists(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=False)
        local_deg_sum = sum(int(pg.local_graph(p).degrees.sum())
                            for p in range(4))
        assert local_deg_sum < int(community_g.degrees.sum())

    def test_owned_nodes_partition_the_graph(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng)
        all_owned = np.concatenate([pg.owned_nodes(p) for p in range(4)])
        assert np.array_equal(np.sort(all_owned),
                              np.arange(community_g.num_nodes))

    def test_owned_edges_disjoint_cover(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=True)
        chunks = [pg.owned_edges(p) for p in range(4)]
        total = sum(c.shape[0] for c in chunks)
        assert total == community_g.num_edges

    def test_feature_locality_mirrored(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=True)
        part0 = pg.local_graph(0)
        halo_nodes = np.unique(part0.edge_list().ravel())
        assert pg.has_feature_locally(0, halo_nodes).all()

    def test_feature_locality_induced(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=False)
        owned = pg.owned_nodes(1)
        other = pg.owned_nodes(2)
        assert pg.has_feature_locally(1, owned).all()
        assert not pg.has_feature_locally(1, other).any()

    def test_replication_factor(self, community_g, rng):
        induced = partition_graph(community_g, 4, "metis", rng=rng)
        mirrored = partition_graph(community_g, 4, "metis", rng=rng,
                                   mirror=True)
        assert induced.replication_factor() == pytest.approx(1.0)
        assert mirrored.replication_factor() > 1.0

    def test_preprocessing_feature_bytes(self, community_g, rng):
        pg = partition_graph(community_g, 4, "metis", rng=rng, mirror=True)
        per_node = community_g.feature_dim * 4
        expected = sum(n.size for n in pg.local_feature_nodes) * per_node
        assert pg.preprocessing_feature_nbytes() == expected

    def test_bad_assignment_length(self, community_g):
        with pytest.raises(ValueError):
            PartitionedGraph.build(community_g, np.zeros(3, dtype=np.int64),
                                   2, mirror=False)

    def test_bad_assignment_values(self, community_g):
        a = np.zeros(community_g.num_nodes, dtype=np.int64)
        a[0] = 9
        with pytest.raises(ValueError):
            PartitionedGraph.build(community_g, a, 2, mirror=False)

    def test_unknown_strategy(self, community_g, rng):
        with pytest.raises(ValueError):
            partition_graph(community_g, 4, "spectral", rng=rng)

    def test_unknown_strategy_error_lists_registered(self, community_g):
        with pytest.raises(ValueError, match="metis"):
            partition_graph(community_g, 4, "spectral")


class TestEveryRegisteredStrategy:
    """Shared invariants, parameterized over the whole registry.

    A newly registered partitioner is exercised here automatically —
    no per-strategy test edits needed.
    """

    @staticmethod
    def _assign(name, graph, num_parts, seed=0):
        return get_partitioner(name)(graph, num_parts,
                                     rng=np.random.default_rng(seed))

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_no_empty_partitions(self, community_g, name):
        p = get_partitioner(name)
        a = self._assign(name, community_g, 4)
        expected = (community_g.num_edges if p.edge_partitioned
                    else community_g.num_nodes)
        assert a.shape == (expected,)
        assert set(np.unique(a)) == set(range(4))

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_same_seed_determinism(self, community_g, name):
        a = self._assign(name, community_g, 4, seed=123)
        b = self._assign(name, community_g, 4, seed=123)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_balance_bounds(self, community_g, name):
        # Loose shared bound: no strategy may concentrate more than 2x
        # the mean load (edges for edge partitioners, nodes otherwise)
        # on one partition of this well-behaved community graph.
        a = self._assign(name, community_g, 4)
        assert partition_balance(a, 4) <= 2.0

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_spec_builds_partitioned_graph(self, community_g, name):
        p = get_partitioner(name)
        pg = PartitionSpec(strategy=name).build(
            community_g, 4, rng=np.random.default_rng(5))
        assert pg.num_parts == 4
        assert pg.edge_partitioned == p.edge_partitioned
        # The disjoint edge cover is total for every ownership model.
        total = sum(pg.owned_edges(part).shape[0] for part in range(4))
        assert total == community_g.num_edges

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    def test_invalid_num_parts_rejected(self, community_g, name):
        with pytest.raises(ValueError):
            self._assign(name, community_g, 0)
