"""Sparsification: sampling distribution, weights, partition sparsifier."""

import numpy as np
import pytest

from repro.graph import Graph, synthetic_lp_graph
from repro.partition import partition_graph
from repro.sparsify import (
    SparsifiedPartitions,
    approx_effective_resistance,
    laplacian_quadratic_form,
    retained_edge_fraction,
    sampling_probabilities,
    sparsify_partitions,
    sparsify_with_level,
    spielman_srivastava_sparsify,
)


@pytest.fixture(scope="module")
def medium_graph():
    rng = np.random.default_rng(21)
    return synthetic_lp_graph(num_nodes=300, target_edges=1500,
                              feature_dim=8, num_communities=6, rng=rng)


class TestApproximation:
    def test_values(self, star_graph):
        # Star: hub degree 4, leaves degree 1 -> 1/4 + 1 = 1.25 each.
        approx = approx_effective_resistance(star_graph)
        assert np.allclose(approx, 1.25)

    def test_isolated_node_rejected(self):
        g = Graph.from_edges(3, [[0, 1]])
        with pytest.raises(ValueError):
            approx_effective_resistance(g, np.array([[0, 2]]))

    def test_probabilities_normalized(self, medium_graph):
        p = sampling_probabilities(medium_graph)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p > 0)

    def test_low_degree_edges_prioritized(self, medium_graph):
        """Edges between low-degree nodes have higher sampling mass."""
        edges = medium_graph.edge_list()
        p = sampling_probabilities(medium_graph, edges)
        deg = medium_graph.degrees
        edge_degsum = deg[edges[:, 0]] + deg[edges[:, 1]]
        low = p[edge_degsum <= np.quantile(edge_degsum, 0.2)].mean()
        high = p[edge_degsum >= np.quantile(edge_degsum, 0.8)].mean()
        assert low > high


class TestSpielmanSrivastava:
    def test_nodes_preserved(self, medium_graph, rng):
        sparse = spielman_srivastava_sparsify(medium_graph, 100, rng=rng)
        assert sparse.num_nodes == medium_graph.num_nodes

    def test_edges_subset_of_original(self, medium_graph, rng):
        sparse = spielman_srivastava_sparsify(medium_graph, 200, rng=rng)
        orig = set(map(tuple, medium_graph.edge_list().tolist()))
        for e in sparse.edge_list().tolist():
            assert tuple(e) in orig

    def test_edge_count_bounded_by_samples(self, medium_graph, rng):
        sparse = spielman_srivastava_sparsify(medium_graph, 150, rng=rng)
        assert 0 < sparse.num_edges <= 150

    def test_weight_formula(self, rng):
        """Weight of each kept edge = multiplicity / (n_samples * p)."""
        g = Graph.from_edges(4, [[0, 1], [1, 2], [2, 3]])
        probs = sampling_probabilities(g)
        n = 50
        rng_fixed = np.random.default_rng(5)
        sparse = spielman_srivastava_sparsify(g, n, rng=rng_fixed,
                                              probabilities=probs)
        # Recompute multiplicities with the same rng sequence.
        rng_check = np.random.default_rng(5)
        draws = rng_check.choice(3, size=n, p=probs)
        edges = g.edge_list()
        weights = dict(zip(map(tuple, sparse.edge_list().tolist()),
                           sparse.edge_weight_list()))
        for idx, count in zip(*np.unique(draws, return_counts=True)):
            key = tuple(edges[idx].tolist())
            assert weights[key] == pytest.approx(count / (n * probs[idx]))

    def test_expected_total_weight_matches_edges(self, medium_graph):
        """E[sum of sparsifier weights] = |E|; check concentration."""
        totals = []
        for seed in range(8):
            sparse = spielman_srivastava_sparsify(
                medium_graph, 400, rng=np.random.default_rng(seed))
            totals.append(sparse.edge_weight_list().sum())
        assert np.mean(totals) == pytest.approx(medium_graph.num_edges,
                                                rel=0.15)

    def test_quadratic_form_approximation(self, medium_graph):
        """Theorem 1: x^T L~ x concentrates around x^T L x for smooth x
        when enough samples are drawn."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal(medium_graph.num_nodes)
        dense_val = laplacian_quadratic_form(medium_graph, x)
        sparse = spielman_srivastava_sparsify(
            medium_graph, 8 * medium_graph.num_edges, rng=rng)
        sparse_val = laplacian_quadratic_form(sparse, x)
        assert sparse_val == pytest.approx(dense_val, rel=0.35)

    def test_invalid_samples(self, medium_graph, rng):
        with pytest.raises(ValueError):
            spielman_srivastava_sparsify(medium_graph, 0, rng=rng)

    def test_probability_alignment_checked(self, medium_graph, rng):
        with pytest.raises(ValueError):
            spielman_srivastava_sparsify(medium_graph, 10, rng=rng,
                                         probabilities=np.ones(3) / 3)

    def test_empty_graph(self, rng):
        g = Graph.empty(5)
        sparse = spielman_srivastava_sparsify(g, 10, rng=rng)
        assert sparse.num_edges == 0

    def test_features_carried_over(self, medium_graph, rng):
        sparse = spielman_srivastava_sparsify(medium_graph, 50, rng=rng)
        assert sparse.features is medium_graph.features


class TestSparsifyWithLevel:
    def test_alpha_015_removes_most_edges(self, medium_graph, rng):
        sparse = sparsify_with_level(medium_graph, 0.15, rng=rng)
        frac = retained_edge_fraction(medium_graph, sparse)
        # Paper: alpha=0.15 leaves roughly 10-15% of edges.
        assert 0.05 < frac < 0.2

    def test_alpha_monotone_in_retention(self, medium_graph):
        fracs = []
        for alpha in (0.05, 0.15, 0.4):
            sparse = sparsify_with_level(medium_graph, alpha,
                                         rng=np.random.default_rng(1))
            fracs.append(retained_edge_fraction(medium_graph, sparse))
        assert fracs[0] < fracs[1] < fracs[2]

    def test_invalid_alpha(self, medium_graph, rng):
        with pytest.raises(ValueError):
            sparsify_with_level(medium_graph, 0.0, rng=rng)


class TestPartitionSparsifier:
    def test_structure(self, medium_graph, rng):
        pg = partition_graph(medium_graph, 4, "metis", rng=rng, mirror=True)
        result = sparsify_partitions(pg, alpha=0.15, rng=rng)
        assert isinstance(result, SparsifiedPartitions)
        assert len(result.graphs) == 4
        assert result.elapsed_seconds >= 0.0

    def test_each_partition_sparsified(self, medium_graph, rng):
        pg = partition_graph(medium_graph, 4, "metis", rng=rng, mirror=True)
        result = sparsify_partitions(pg, alpha=0.15, rng=rng)
        for part, sparse in enumerate(result.graphs):
            original = pg.local_graph(part)
            assert sparse.num_nodes == original.num_nodes
            assert sparse.num_edges < original.num_edges

    def test_total_edges_reduced(self, medium_graph, rng):
        pg = partition_graph(medium_graph, 4, "metis", rng=rng, mirror=True)
        result = sparsify_partitions(pg, alpha=0.15, rng=rng)
        total_orig = sum(p.num_edges for p in pg.parts)
        assert result.total_edges() < 0.3 * total_orig

    def test_empty_partition_tolerated(self, rng):
        g = Graph.from_edges(6, [[0, 1], [1, 2], [0, 2]],
                             features=np.zeros((6, 2), dtype=np.float32))
        assignment = np.array([0, 0, 0, 1, 1, 1])
        from repro.partition import PartitionedGraph
        pg = PartitionedGraph.build(g, assignment, 2, mirror=True)
        result = sparsify_partitions(pg, alpha=0.5, rng=rng)
        assert result.graphs[1].num_edges == 0

    def test_invalid_alpha(self, medium_graph, rng):
        pg = partition_graph(medium_graph, 2, "metis", rng=rng)
        with pytest.raises(ValueError):
            sparsify_partitions(pg, alpha=-1.0, rng=rng)
