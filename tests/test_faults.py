"""Fault-tolerance subsystem: plans, recovery policies, chaos.

Covers the acceptance criteria of the ``repro.faults`` PR:

* an empty :class:`FaultPlan` is bit-identical to no plan at all, on
  every backend;
* the legacy ``worker_failure_prob`` knob compiles to a plan with
  identical draws (same results, same ledgers);
* every recovery policy (``drop`` / ``retry`` / ``restore`` /
  ``elastic``) completes under injected faults, and ``restore`` is
  bit-identical to the fault-free twin;
* the process backend detects a real SIGKILL mid-training and
  finishes under every policy;
* fault events land in ``TrainResult.faults`` and (when observing)
  as ``fault`` spans / ``fault.*`` counters in the RunReport;
* checkpoints round-trip bit-exactly through ``repro.nn.serialize``;
* ``TrainConfig`` rejects incoherent fault settings;
* lint rule R106 flags unguarded worker I/O.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.frameworks import run_framework
from repro.distributed import TrainConfig
from repro.faults import (
    RECOVERY_POLICIES,
    FaultEvent,
    FaultPlan,
    restore_worker,
    snapshot_worker,
)
from repro.graph import split_edges, synthetic_lp_graph

HAS_FORK = "fork" in mp.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="process backend needs the fork start method")


@pytest.fixture(scope="module")
def split():
    """One medium community graph shared by every fault case."""
    rng = np.random.default_rng(902)
    graph = synthetic_lp_graph(num_nodes=140, target_edges=520,
                               feature_dim=16, num_communities=4, rng=rng)
    return split_edges(graph, rng=rng)


def _train(split, backend="serial", sync="model", plan=None,
           recovery="drop", prob=0.0, seed=7, workers=3, epochs=2,
           observe=False, **cfg):
    config = TrainConfig(hidden_dim=16, num_layers=2, fanouts=(5, 5),
                         epochs=epochs, batch_size=64, seed=seed,
                         sync=sync, backend=backend, observe=observe,
                         worker_failure_prob=prob, fault_plan=plan,
                         recovery=recovery, fault_timeout_s=15.0,
                         retry_backoff_s=0.05, **cfg)
    return run_framework("splpg", split, workers, config,
                         rng=np.random.default_rng(seed))


def _fingerprint(result):
    """Everything that must match bit for bit across twins."""
    return (
        result.test.hits,
        result.test.auc,
        result.best_epoch,
        tuple(s.mean_loss for s in result.history),
        tuple(tuple(sorted(s.comm.to_dict().items()))
              for s in result.history),
    )


CRASH_PLAN = FaultPlan(
    name="crash", events=(
        FaultEvent(kind="crash", epoch=1, round=1, worker=1),))

MIXED_PLAN = FaultPlan(
    name="mixed", events=(
        FaultEvent(kind="straggle", epoch=0, round=1, worker=0,
                   delay_s=0.5),
        FaultEvent(kind="crash", epoch=1, round=0, worker=1),
        FaultEvent(kind="msg_loss", epoch=1, round=1, worker=2),
        FaultEvent(kind="msg_corrupt", epoch=1, round=2, worker=0),
        FaultEvent(kind="store_outage", epoch=0, round=2, rounds=2),
    ))


# ---------------------------------------------------------------------------
# FaultPlan


class TestFaultPlan:
    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor", epoch=0, round=0)
        with pytest.raises(ValueError):
            FaultEvent(kind="crash", epoch=-1, round=0)
        with pytest.raises(ValueError):
            FaultEvent(kind="straggle", epoch=0, round=0, delay_s=-1.0)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(worker_failure_prob=1.0)
        assert FaultPlan.empty().is_empty()
        assert not FaultPlan.from_probability(0.2).is_empty()
        assert not CRASH_PLAN.is_empty()

    def test_events_at(self):
        assert MIXED_PLAN.events_at(1, 0)[0].kind == "crash"
        assert MIXED_PLAN.events_at(0, 0) == []
        assert MIXED_PLAN.max_worker() == 2

    def test_dict_round_trip(self):
        clone = FaultPlan.from_dict(MIXED_PLAN.to_dict())
        assert clone == MIXED_PLAN
        assert clone.describe() == MIXED_PLAN.describe()

    def test_random_is_seeded(self):
        a = FaultPlan.random(num_workers=4, epochs=3, seed=5)
        b = FaultPlan.random(num_workers=4, epochs=3, seed=5)
        c = FaultPlan.random(num_workers=4, epochs=3, seed=6)
        assert a == b
        assert a != c


# ---------------------------------------------------------------------------
# TrainConfig validation


class TestConfigValidation:
    def test_unknown_recovery_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            TrainConfig(recovery="pray")

    def test_plan_and_prob_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive|both"):
            TrainConfig(fault_plan=CRASH_PLAN, worker_failure_prob=0.2)

    def test_restore_on_process_needs_checkpointing(self):
        with pytest.raises(ValueError,
                           match="checkpoint|checkpointing"):
            TrainConfig(backend="process", recovery="restore",
                        checkpoint_every=0, num_workers=2)
        # Checkpointing on (the default) is fine.
        TrainConfig(backend="process", recovery="restore", num_workers=2)

    def test_fault_knob_ranges(self):
        with pytest.raises(ValueError):
            TrainConfig(fault_timeout_s=0.0)
        with pytest.raises(ValueError):
            TrainConfig(max_retries=-1)
        with pytest.raises(ValueError):
            TrainConfig(retry_backoff_s=-0.1)
        with pytest.raises(ValueError):
            TrainConfig(checkpoint_every=-1)

    def test_degrade_warning_carries_reason(self):
        with pytest.warns(RuntimeWarning, match="reason:"):
            config = TrainConfig(backend="thread", num_workers=1)
        assert config.backend == "serial"

    def test_plan_accepts_dict_form(self):
        config = TrainConfig(fault_plan=CRASH_PLAN.to_dict())
        assert isinstance(config.fault_plan, FaultPlan)
        assert config.fault_plan == CRASH_PLAN


# ---------------------------------------------------------------------------
# Bit-identity of the no-fault paths


class TestEmptyPlanBitIdentity:
    def test_empty_plan_matches_no_plan_serial(self, split):
        assert (_fingerprint(_train(split))
                == _fingerprint(_train(split, plan=FaultPlan.empty())))

    def test_empty_plan_matches_no_plan_thread(self, split):
        assert (_fingerprint(_train(split, backend="thread"))
                == _fingerprint(_train(split, backend="thread",
                                       plan=FaultPlan.empty())))

    @needs_fork
    def test_empty_plan_matches_no_plan_process(self, split):
        assert (_fingerprint(_train(split))
                == _fingerprint(_train(split, backend="process",
                                       plan=FaultPlan.empty())))

    def test_legacy_prob_equals_compiled_plan(self, split):
        """``worker_failure_prob`` and its plan shim draw identically."""
        assert (_fingerprint(_train(split, prob=0.3))
                == _fingerprint(
                    _train(split, plan=FaultPlan.from_probability(0.3))))

    @needs_fork
    def test_legacy_prob_equals_compiled_plan_process(self, split):
        assert (_fingerprint(_train(split, prob=0.3))
                == _fingerprint(_train(split, backend="process",
                                       plan=FaultPlan.from_probability(0.3))))


# ---------------------------------------------------------------------------
# Recovery policies (in-process backends)


class TestRecoveryPolicies:
    @pytest.mark.parametrize("recovery", RECOVERY_POLICIES)
    @pytest.mark.parametrize("sync", ["model", "grad"])
    def test_policies_complete_under_mixed_faults(self, split, sync,
                                                  recovery):
        result = _train(split, sync=sync, plan=MIXED_PLAN,
                        recovery=recovery)
        assert np.isfinite(result.test.auc)
        assert len(result.history) == 2
        assert result.faults  # the ledger records what happened

    def test_faults_are_deterministic(self, split):
        """Same plan + seed -> byte-identical faulty run (twice)."""
        a = _train(split, plan=MIXED_PLAN, recovery="drop")
        b = _train(split, plan=MIXED_PLAN, recovery="drop")
        assert _fingerprint(a) == _fingerprint(b)

    def test_drop_records_contributions(self, split):
        result = _train(split, plan=MIXED_PLAN, recovery="drop")
        # crash + msg_loss + msg_corrupt all lose their contribution.
        assert result.dropped_contributions == 3
        assert result.faults["dropped_contributions"] == 3

    def test_retry_redelivers(self, split):
        result = _train(split, plan=MIXED_PLAN, recovery="retry")
        assert result.dropped_contributions == 0
        assert result.faults["redelivered"] >= 3
        assert result.faults["retry_backoff_s"] > 0

    def test_restore_is_bit_identical_to_fault_free(self, split):
        """The tentpole invariant: crash + restore-from-checkpoint +
        RNG replay reproduces the fault-free run bit for bit."""
        clean = _train(split, sync="grad")
        restored = _train(split, sync="grad", plan=CRASH_PLAN,
                          recovery="restore")
        assert (tuple(s.mean_loss for s in restored.history)
                == tuple(s.mean_loss for s in clean.history))
        assert restored.test.auc == clean.test.auc
        assert restored.test.hits == clean.test.hits
        assert restored.faults["restores"] == 1

    def test_elastic_removes_worker_and_reweights(self, split):
        result = _train(split, plan=CRASH_PLAN, recovery="elastic")
        assert result.faults["elastic_removed"] == 1
        assert np.isfinite(result.test.auc)

    def test_elastic_spares_last_worker(self, split):
        plan = FaultPlan(events=tuple(
            FaultEvent(kind="crash", epoch=0, round=0, worker=w)
            for w in range(3)))
        result = _train(split, plan=plan, recovery="elastic")
        assert result.faults["elastic_removed"] == 2
        assert result.faults["spared_last_worker"] >= 1
        assert np.isfinite(result.test.auc)

    def test_grad_sync_replicas_stay_identical(self, split):
        """Fault rounds must not desynchronize surviving replicas.

        Uses psgd_pa: splpg's per-worker sparsifier correction makes
        replicas legitimately differ even fault-free."""
        from repro.core import FRAMEWORKS, build_trainer

        config = TrainConfig(hidden_dim=16, num_layers=2, fanouts=(5, 5),
                             epochs=2, batch_size=64, seed=7, sync="grad",
                             fault_plan=MIXED_PLAN, recovery="drop")
        trainer = build_trainer(FRAMEWORKS["psgd_pa"], split, 3, config,
                                rng=np.random.default_rng(7))
        trainer.train()
        states = [w.model.state_dict() for w in trainer.workers]
        for name in states[0]:
            assert np.array_equal(states[0][name], states[1][name])
            assert np.array_equal(states[0][name], states[2][name])

    def test_consumed_batch_keeps_rng_streams_aligned(self, split):
        """A dropped round still *consumes* the worker's batch: the
        loader permutation advances exactly once per round on every
        backend, so a faulty run stays bit-identical across execution
        engines — the same guarantee the fault-free paths give.  (The
        skipped batch is never sampled, so the worker's stream differs
        from the fault-free twin's — by design, identically
        everywhere.)"""
        crash_plan = FaultPlan(events=(
            FaultEvent(kind="crash", epoch=0, round=1, worker=1),))
        serial = _train(split, plan=crash_plan)
        thread = _train(split, backend="thread", plan=crash_plan)
        assert _fingerprint(serial) == _fingerprint(thread)
        if HAS_FORK:
            # Plan crashes SIGKILL the child on the process backend
            # (warm respawn makes no bit-identity claim), so the
            # three-backend alignment check uses a message fault.
            msg_plan = FaultPlan(events=(
                FaultEvent(kind="msg_loss", epoch=0, round=1, worker=1),))
            assert (_fingerprint(_train(split, plan=msg_plan))
                    == _fingerprint(_train(split, backend="process",
                                           plan=msg_plan)))


# ---------------------------------------------------------------------------
# Process backend: real kills


@needs_fork
class TestProcessBackendKills:
    @pytest.mark.parametrize("recovery", RECOVERY_POLICIES)
    def test_real_sigkill_recovers(self, split, recovery):
        """A plan crash on the process backend SIGKILLs the child for
        real; the guarded receive detects it and the run finishes."""
        result = _train(split, backend="process", plan=CRASH_PLAN,
                        recovery=recovery)
        assert np.isfinite(result.test.auc)
        assert len(result.history) == 2
        if recovery == "elastic":
            assert result.faults["elastic_removed"] == 1
        else:
            assert result.faults.get("child_deaths", 0) >= 1

    def test_restore_bit_identical_after_real_kill(self, split):
        clean = _train(split, backend="process", sync="grad",
                       plan=FaultPlan.empty())
        restored = _train(split, backend="process", sync="grad",
                          plan=CRASH_PLAN, recovery="restore")
        assert (tuple(s.mean_loss for s in restored.history)
                == tuple(s.mean_loss for s in clean.history))
        assert restored.test.auc == clean.test.auc
        assert restored.faults["restores"] == 1
        assert restored.faults["checkpoints"] >= 1

    def test_retry_requeues_the_inflight_batch(self, split):
        result = _train(split, backend="process", plan=CRASH_PLAN,
                        recovery="retry")
        assert result.faults.get("requeued_batches", 0) >= 1
        assert result.dropped_contributions == 0


# ---------------------------------------------------------------------------
# Observability: spans, counters, report meta


class TestFaultObservability:
    def test_fault_events_reach_the_report(self, split):
        result = _train(split, plan=MIXED_PLAN, recovery="drop",
                        observe=True)
        report = result.report
        assert report is not None
        assert report.meta["faults"] == {
            k: float(v) for k, v in result.faults.items()}
        counters = [n for n in report.metrics if n.startswith("fault.")]
        assert "fault.crashes" in counters
        assert "fault.dropped_contributions" in counters

        def spans_named(spans, name):
            out = []
            for s in spans:
                if s["name"] == name:
                    out.append(s)
                out.extend(spans_named(s.get("children", []), name))
            return out

        faults = spans_named(report.spans, "fault")
        kinds = {s["attrs"]["kind"] for s in faults}
        assert {"crash", "straggle", "store_outage"} <= kinds

    def test_legacy_counter_name_preserved(self, split):
        result = _train(split, plan=MIXED_PLAN, recovery="drop",
                        observe=True)
        assert ("train.dropped_contributions" in result.report.metrics)

    def test_result_summary_mentions_faults(self, split):
        result = _train(split, plan=CRASH_PLAN, recovery="drop")
        assert "fault" in result.summary()


# ---------------------------------------------------------------------------
# Snapshot round-trip (repro.nn.serialize)


class TestSnapshotRoundTrip:
    def test_mid_training_snapshot_restores_bit_exactly(self, split):
        """Serialize a worker mid-training, scramble it, restore, and
        the model / optimizer / RNG state all match bit for bit."""
        from repro.core import FRAMEWORKS, build_trainer

        config = TrainConfig(hidden_dim=16, num_layers=2, fanouts=(5, 5),
                             epochs=1, batch_size=64, seed=7)
        trainer = build_trainer(FRAMEWORKS["splpg"], split, 2, config,
                                rng=np.random.default_rng(7))
        trainer.train()  # leaves the workers in a mid-stream state
        worker = trainer.workers[0]

        snap = snapshot_worker(worker, epoch=1, rnd=0)
        model_before = {k: v.copy()
                        for k, v in worker.model.state_dict().items()}
        optim_before = {k: (v.copy() if isinstance(v, np.ndarray) else v)
                        for k, v in worker.optimizer.state_dict().items()}
        rng_before = worker.rng.bit_generator.state

        # Scramble everything the snapshot claims to capture.
        for p in worker.model.parameters():
            p.data[...] = 0.0
        worker.rng = np.random.default_rng(0xBAD)

        restore_worker(worker, snap)
        for name, arr in worker.model.state_dict().items():
            assert np.array_equal(arr, model_before[name]), name
        restored_optim = worker.optimizer.state_dict()
        assert set(restored_optim) == set(optim_before)
        for key, val in optim_before.items():
            if isinstance(val, np.ndarray):
                assert np.array_equal(restored_optim[key], val), key
            else:
                assert restored_optim[key] == val, key
        assert worker.rng.bit_generator.state == rng_before
        # The restored stream continues identically.
        probe = np.random.Generator(type(worker.rng.bit_generator)())
        probe.bit_generator.state = rng_before
        assert worker.rng.integers(0, 2**31) == probe.integers(0, 2**31)

    def test_snapshot_survives_disk(self, split, tmp_path):
        from repro.core import FRAMEWORKS, build_trainer
        from repro.faults import load_snapshot, save_snapshot

        config = TrainConfig(hidden_dim=16, num_layers=2, fanouts=(5, 5),
                             epochs=1, batch_size=64, seed=7)
        trainer = build_trainer(FRAMEWORKS["splpg"], split, 2, config,
                                rng=np.random.default_rng(7))
        trainer.train()
        snap = snapshot_worker(trainer.workers[0], epoch=1, rnd=0)
        path = tmp_path / "w0.ckpt"
        save_snapshot(snap, str(path))
        loaded = load_snapshot(str(path))
        assert loaded.payload == snap.payload
        assert (loaded.epoch, loaded.round) == (snap.epoch, snap.round)


# ---------------------------------------------------------------------------
# Chaos harness


class TestChaosHarness:
    def test_smoke_sweep_passes(self, split):
        from repro.faults.chaos import run_chaos

        outcomes = run_chaos(smoke=True, backends=("serial", "thread"),
                             verbose=False)
        assert outcomes and all(o.ok for o in outcomes)

    def test_violations_are_raised(self):
        from repro.faults.chaos import ChaosError, run_chaos

        # An impossible tolerance forces a metrics violation.
        with pytest.raises(ChaosError, match="drifted|failed"):
            run_chaos(smoke=True, backends=("serial",),
                      tolerance=-1.0, observe=False, verbose=False)

    def test_cli_plans_command(self, capsys):
        from repro.faults.__main__ import main

        assert main(["plans"]) == 0
        out = capsys.readouterr().out
        assert "crash_mid" in out and "mixed" in out


# ---------------------------------------------------------------------------
# Lint rule R106


class TestUnguardedWorkerIORule:
    def test_flags_bare_except_and_raw_recv(self):
        from repro.lint import lint_source

        source = (
            "def pump(conn):\n"
            "    try:\n"
            "        return conn.recv()\n"
            "    except:\n"
            "        return None\n")
        findings = [f for f in lint_source(
            source, modpath="repro/distributed/pipes.py")
            if f.rule_id == "R106"]
        assert len(findings) == 2

    def test_scoped_to_distributed(self):
        from repro.lint import lint_source

        source = "def pump(conn):\n    return conn.recv()\n"
        findings = [f for f in lint_source(
            source, modpath="repro/graph/loader.py")
            if f.rule_id == "R106"]
        assert findings == []

    def test_suppression_comment_respected(self):
        from repro.lint import lint_source

        source = ("def pump(conn):\n"
                  "    return conn.recv()  # lint: disable=R106\n")
        findings = [f for f in lint_source(
            source, modpath="repro/distributed/pipes.py")
            if f.rule_id == "R106"]
        assert findings == []

    def test_repo_distributed_layer_is_clean(self):
        from pathlib import Path

        from repro.lint.engine import lint_paths

        src = Path(__file__).resolve().parents[1] / "src"
        findings = lint_paths([src / "repro" / "distributed"],
                              select=["R106"])
        assert findings == []
