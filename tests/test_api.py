"""Tests for the unified ``repro.api`` front door.

Covers the one-liner :func:`repro.run`, the chainable
:class:`repro.api.Session`, the :func:`repro.api.resolve_config`
reconciliation point, the deprecation shims over the legacy top-level
entry points, and the R105 facade lint rule.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.api import Session, resolve_config
from repro.distributed import TrainConfig, TrainResult
from repro.distributed.inference import InferenceResult
from repro.experiments.config import ExperimentScale, MeanResult
from repro.graph import split_edges, synthetic_lp_graph
from repro.lint import get_rule, lint_source


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(31)
    return synthetic_lp_graph(num_nodes=110, target_edges=380,
                              feature_dim=12, num_communities=3, rng=rng)


@pytest.fixture(scope="module")
def split(graph):
    return split_edges(graph, rng=np.random.default_rng(31))


class TestRun:
    def test_run_with_split(self, split):
        result = repro.run("psgd_pa", split=split, workers=2,
                           scale="smoke", hidden_dim=12, epochs=1)
        assert isinstance(result, TrainResult)
        assert result.num_workers == 2
        assert "framework" in result.summary()

    def test_run_with_graph(self, graph):
        result = repro.run("psgd_pa", graph=graph, workers=2,
                           scale="smoke", hidden_dim=12, epochs=1)
        assert isinstance(result, TrainResult)

    def test_run_matches_legacy_entry_point(self, split):
        """The facade is a veneer: same seed, same result."""
        from repro.core.frameworks import run_framework

        new = repro.run("psgd_pa", split=split, workers=2, scale="smoke",
                        hidden_dim=12, epochs=1)
        config = resolve_config("smoke", backend="serial", num_workers=2,
                                hidden_dim=12, epochs=1)
        old = run_framework("psgd_pa", split, 2, config,
                            rng=np.random.default_rng(config.seed))
        assert new.test.hits == old.test.hits
        assert new.comm_total.to_dict() == old.comm_total.to_dict()

    def test_run_centralized(self, split):
        result = repro.run("centralized", split=split, scale="smoke",
                           hidden_dim=12, epochs=1)
        assert result.framework == "centralized"

    def test_run_requires_one_source(self, split, graph):
        with pytest.raises(ValueError, match="exactly one"):
            repro.run("psgd_pa", workers=2)
        with pytest.raises(ValueError, match="exactly one"):
            repro.run("psgd_pa", split=split, graph=graph)

    def test_run_rejects_bad_workers(self, split):
        with pytest.raises(ValueError, match="workers"):
            repro.run("psgd_pa", split=split, workers=0)


class TestSession:
    def test_chain_and_train(self, graph, split):
        session = (Session(graph, split)
                   .partition(2)
                   .framework("psgd_pa")
                   .backend("thread")
                   .scale("smoke")
                   .configure(epochs=1, hidden_dim=12))
        result = session.train()
        assert isinstance(result, TrainResult)
        assert session.result is result

    def test_session_accepts_bare_split(self, split):
        result = (Session(split).partition(2).framework("psgd_pa")
                  .scale("smoke").configure(epochs=1, hidden_dim=12)
                  .train())
        assert isinstance(result, TrainResult)

    def test_score_after_train(self, graph, split):
        session = (Session(graph, split).partition(2).framework("psgd_pa")
                   .scale("smoke").configure(epochs=1, hidden_dim=12))
        session.train()
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        inf = session.score(pairs)
        assert isinstance(inf, InferenceResult)
        assert inf.scores.shape == (3,)

    def test_score_before_train_raises(self, split):
        with pytest.raises(RuntimeError, match="train"):
            Session(split).score(np.array([[0, 1]]))

    def test_unknown_framework_and_backend_rejected(self, split):
        with pytest.raises(ValueError, match="unknown framework"):
            Session(split).framework("dreamer")
        with pytest.raises(ValueError, match="unknown backend"):
            Session(split).backend("tpu")

    def test_config_reflects_chain(self, split):
        config = (Session(split).partition(4).backend("thread")
                  .configure(epochs=7).config())
        assert config.num_workers == 4
        assert config.backend == "thread"
        assert config.epochs == 7


class TestResolveConfig:
    def test_none_scale_gives_paper_defaults(self):
        config = resolve_config()
        assert config == TrainConfig()

    def test_preset_names(self):
        assert resolve_config("paper").hidden_dim == 256
        assert resolve_config("quick").hidden_dim == 48
        assert resolve_config("smoke").epochs == 3

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="unknown scale preset"):
            resolve_config("galactic")

    def test_overrides_beat_scale(self):
        config = resolve_config("quick", epochs=99, backend="thread",
                                num_workers=4)
        assert config.epochs == 99
        assert config.backend == "thread"
        assert config.num_workers == 4
        assert config.hidden_dim == 48  # still from the preset

    def test_experiment_scale_delegates_here(self):
        """ExperimentScale.train_config and resolve_config agree."""
        scale = ExperimentScale.quick()
        assert scale.train_config(epochs=5) == resolve_config(scale,
                                                              epochs=5)


class TestDeprecationShims:
    def test_run_framework_shim_warns_and_delegates(self):
        from repro.core.frameworks import run_framework as real

        with pytest.warns(DeprecationWarning, match="repro.run_framework"):
            shim = repro.run_framework
        assert shim is real

    def test_build_trainer_shim_warns_and_delegates(self):
        from repro.core.frameworks import build_trainer as real

        with pytest.warns(DeprecationWarning, match="repro.build_trainer"):
            shim = repro.build_trainer
        assert shim is real

    def test_internal_imports_stay_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import build_trainer, run_framework  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    @pytest.mark.parametrize("name", ["run_framework", "build_trainer"])
    def test_shim_emits_exactly_one_warning(self, name):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            getattr(repro, name)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert f"repro.{name} is deprecated" in str(deprecations[0].message)

    def test_shim_result_parity(self, split):
        """Training through the shim gives the same result as the
        blessed paths — the shim is pure indirection."""
        with pytest.warns(DeprecationWarning):
            legacy = repro.run_framework
        config = resolve_config("smoke", backend="serial", num_workers=2,
                                hidden_dim=12, epochs=1)
        old = legacy("psgd_pa", split, 2, config,
                     rng=np.random.default_rng(config.seed))
        new = repro.run("psgd_pa", split=split, workers=2, scale="smoke",
                        hidden_dim=12, epochs=1)
        assert new.test.hits == old.test.hits
        assert new.comm_total.to_dict() == old.comm_total.to_dict()


class TestSummaries:
    def test_mean_result_summary(self, split):
        from repro.experiments.config import run_framework_mean

        config = resolve_config("smoke", hidden_dim=12, epochs=1)
        mean = run_framework_mean("psgd_pa", split, 2, config,
                                  seeds=(0, 1))
        assert isinstance(mean, MeanResult)
        text = mean.summary()
        assert "seeds:     2" in text
        assert "Hits=" in text and "GB/epoch" in text


class TestFacadeLintRule:
    R105 = [get_rule("R105")]

    def test_direct_construction_flagged(self):
        code = "t = DistributedTrainer('x', split, pg, config)\n"
        findings = lint_source(code, rules=self.R105)
        assert [f.rule_id for f in findings] == ["R105"]

    def test_qualified_construction_flagged(self):
        code = "t = repro.distributed.DistributedTrainer('x', s, p, c)\n"
        findings = lint_source(code, rules=self.R105)
        assert [f.rule_id for f in findings] == ["R105"]

    def test_blessed_assemblers_exempt(self):
        code = "t = DistributedTrainer('x', split, pg, config)\n"
        for modpath in ("repro/core/frameworks.py",
                        "repro/distributed/trainer.py"):
            assert lint_source(code, modpath=modpath,
                               rules=self.R105) == []

    def test_suppression_comment(self):
        code = ("t = DistributedTrainer('x', s, p, c)"
                "  # lint: disable=R105\n")
        assert lint_source(code, rules=self.R105) == []
