"""End-to-end determinism and exact byte-accounting checks."""

import numpy as np
import pytest

from repro import TrainConfig, run_framework
from repro.distributed import CommMeter, RemoteGraphStore, WorkerGraphView
from repro.distributed.comm import BYTES_PER_EDGE, BYTES_PER_NODE_ID
from repro.distributed.trainer import DistributedTrainer
from repro.lint import audit_store, autograd_sanitizer
from repro.partition import partition_graph


def config(**overrides):
    base = dict(gnn_type="sage", hidden_dim=16, num_layers=2,
                fanouts=(5, 3), batch_size=64, epochs=2, hits_k=20,
                eval_every=2, seed=3)
    base.update(overrides)
    return TrainConfig(**base)


class TestDeterminism:
    @pytest.mark.parametrize("name", ["centralized", "psgd_pa", "splpg"])
    def test_same_seed_same_result(self, small_split, name):
        a = run_framework(name, small_split, 2, config(),
                          rng=np.random.default_rng(9))
        b = run_framework(name, small_split, 2, config(),
                          rng=np.random.default_rng(9))
        assert a.test.hits == b.test.hits
        assert a.test.auc == b.test.auc
        assert a.comm_total.graph_data_bytes == \
            b.comm_total.graph_data_bytes
        for sa, sb in zip(a.history, b.history):
            assert sa.mean_loss == sb.mean_loss

    def test_different_seed_different_result(self, small_split):
        a = run_framework("splpg", small_split, 2, config(seed=1),
                          rng=np.random.default_rng(1))
        b = run_framework("splpg", small_split, 2, config(seed=2),
                          rng=np.random.default_rng(2))
        assert a.history[0].mean_loss != b.history[0].mean_loss


class TestSanitizedDistributedDeterminism:
    """A 2-worker epoch under both runtime sanitizers, run twice.

    The sanitizers must neither perturb the numerics (bit-identical
    losses and metrics across runs) nor the byte accounting (identical
    comm-meter totals), while auditing every store answer.
    """

    def _run(self, small_split, seed):
        graph = small_split.train_graph
        pg = partition_graph(graph, 2, "metis",
                             rng=np.random.default_rng(seed), mirror=True)
        store = audit_store(RemoteGraphStore(graph))
        trainer = DistributedTrainer(
            "psgd_pa", small_split, pg, config(seed=seed),
            remote_store=store)
        with autograd_sanitizer():
            return trainer.train()

    def test_bit_identical_under_sanitizers(self, small_split):
        a = self._run(small_split, 11)
        b = self._run(small_split, 11)
        assert [s.mean_loss for s in a.history] == \
            [s.mean_loss for s in b.history]
        assert a.comm_total.feature_bytes == b.comm_total.feature_bytes
        assert a.comm_total.structure_bytes == b.comm_total.structure_bytes
        assert a.comm_total.sync_bytes == b.comm_total.sync_bytes
        assert a.test.hits == b.test.hits
        assert a.test.auc == b.test.auc


class TestDeltaCharging:
    """Exact byte counts for the complete data-sharing view."""

    def test_complete_query_charges_missing_edges_only(self,
                                                       featured_graph):
        pg = partition_graph(featured_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=False)
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(featured_graph),
                               meter=meter)
        nodes = np.arange(featured_graph.num_nodes, dtype=np.int64)
        nbrs, _, _ = view.neighbors_batch(nodes)
        # full answers returned
        assert nbrs.size == featured_graph.num_directed_edges
        local = pg.local_graph(0)
        missing_edges = int(featured_graph.num_directed_edges
                            - local.num_directed_edges)
        full_deg = featured_graph.degrees
        local_deg = local.degrees
        incomplete = int(np.count_nonzero(full_deg - local_deg > 0))
        expected = missing_edges * BYTES_PER_EDGE + \
            incomplete * BYTES_PER_NODE_ID
        assert meter.current.structure_bytes == expected

    def test_complete_query_free_when_mirrored_and_owned(self,
                                                         featured_graph):
        pg = partition_graph(featured_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=True)
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(featured_graph),
                               meter=meter)
        owned = pg.owned_nodes(0)
        view.neighbors_batch(owned)  # mirrored => complete locally
        assert meter.current.structure_bytes == 0

    def test_repeated_queries_charged_repeatedly(self, featured_graph):
        """The paper's accounting has no cross-batch structure cache."""
        pg = partition_graph(featured_graph, 2, "metis",
                             rng=np.random.default_rng(0), mirror=False)
        meter = CommMeter()
        view = WorkerGraphView(pg, 0, remote=RemoteGraphStore(featured_graph),
                               meter=meter)
        foreign = pg.owned_nodes(1)[:5]
        view.neighbors_batch(foreign)
        first = meter.current.structure_bytes
        view.neighbors_batch(foreign)
        assert meter.current.structure_bytes == 2 * first
