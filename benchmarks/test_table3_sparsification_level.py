"""Table III: impact of the sparsification level alpha.

Paper shape: smaller alpha -> more edges removed -> bigger
communication saving but lower accuracy; alpha = 0.15 balances the
trade-off (~68% saving at near-peak accuracy).
"""

from conftest import run_once

from repro.experiments import run_table3


def test_table3_sparsification_level(benchmark, scale, report):
    alphas = (0.05, 0.10, 0.15, 0.20)
    rows = run_once(benchmark, lambda: run_table3(
        dataset="cora", alphas=alphas, p_values=(4,), scale=scale))
    report("Table III: sparsification level vs saving and accuracy",
           rows, ["alpha", "p", "comm_saving", "hits"])

    savings = {r["alpha"]: r["comm_saving"] for r in rows}
    # Cost saving decreases monotonically as alpha grows.
    ordered = [savings[a] for a in alphas]
    assert all(a > b for a, b in zip(ordered, ordered[1:])), ordered
    assert savings[0.05] > 0.5
