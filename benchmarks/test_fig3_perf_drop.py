"""Figure 3: accuracy drop of state-of-the-art distributed methods.

Paper shape: PSGD-PA, LLCG, RandomTMA and SuperTMA all fall clearly
below centralized training; RandomTMA is typically the worst.
"""

from conftest import run_once, strict

from repro.experiments import run_fig3


def test_fig3_perf_drop(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig3(
        datasets=("cora", "citeseer"), p_values=(4,), scale=scale))
    report("Figure 3: accuracy of SOTA distributed methods (GraphSAGE)",
           rows, ["dataset", "p", "framework", "hits", "auc"])

    if not strict(scale):
        return
    by = {(r["dataset"], r["framework"]): r["hits"] for r in rows}
    for dataset in ("cora", "citeseer"):
        central = by[(dataset, "Centralized")]
        for fw in ("PSGD-PA", "RandomTMA", "SuperTMA"):
            assert by[(dataset, fw)] < central, (
                f"{fw} should degrade vs centralized on {dataset}")
