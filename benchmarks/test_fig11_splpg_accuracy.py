"""Figure 11: SpLPG recovers (most of) the centralized accuracy.

Paper shape: across datasets, SpLPG's Hits@K lands close to centralized
training — occasionally a bit below on small graphs where
sparsification bites (the GCN/Citeseer caveat in the paper).
"""

from conftest import run_once, strict

from repro.experiments import run_fig11


def test_fig11_splpg_accuracy(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig11(
        datasets=("cora", "citeseer"), p_values=(4,),
        gnn_types=("gcn", "sage"), scale=scale))
    report("Figure 11: accuracy of SpLPG vs centralized", rows,
           ["dataset", "gnn", "p", "centralized_hits", "splpg_hits",
            "gap"])

    if not strict(scale):
        return
    for row in rows:
        # SpLPG should land in the centralized ballpark — well above
        # the collapse of the vanilla distributed baselines.  GCN on
        # small graphs is the paper's own caveat (sparsification bites
        # when there are few edges to begin with), so it gets a looser
        # floor than GraphSAGE.
        floor = 0.45 if row["gnn"] == "sage" else 0.25
        assert row["splpg_hits"] >= floor * row["centralized_hits"], row
