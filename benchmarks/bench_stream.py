"""Streaming benchmark: deterministic tick loop under churn.

Replays a seeded :class:`~repro.stream.ArrivalPlan` through the
:class:`~repro.stream.StreamDriver` on every serving backend under two
regimes:

* ``steady`` — default triggers: the graph drifts, embeddings refresh
  by frontier recompute, and each candidate hot-swaps into the live
  cluster (measures the common-case swap latency);
* ``churn`` — a hair-trigger rebalance threshold plus an unreachable
  AUC floor: every tick re-partitions (cold swap) and every candidate
  is rolled back (measures the worst-case maintenance path).

``events_per_s`` is arrival-plan events applied per real second —
the incremental-maintenance throughput (shard patching, frontier
re-embedding and serving included).  ``swap_p50_ms`` is the simulated
latency from hot-swap activation to the first post-swap completion.
Per mode, the report digest must be bit-identical across backends —
the benchmark doubles as the streaming determinism check at realistic
event volume.

Emitted schema (``BENCH_stream.json``)::

    {
      "schema": "bench_stream/v1",
      "config": {...stream knobs...},
      "host": {"cpu_count": ..., "schedulable_cpus": ...},
      "results": [
        {"mode": "steady", "backend": "serial", "wall_s": 1.2,
         "ticks": 6, "events": 54, "events_per_s": 45.0,
         "requests": 144, "completed": 141, "rebalances": 0,
         "swaps": 5, "rollbacks": 0, "reembed_rows": 310,
         "swap_p50_ms": 0.2, "stream_mbytes": 0.4,
         "digest": "..."},
        ...
      ]
    }

Run via ``scripts/bench.py --suite stream`` (``--smoke`` for the
CI-sized variant).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graph import synthetic_lp_graph
from repro.nn.models import build_model
from repro.partition.registry import PartitionSpec
from repro.stream import StreamConfig, StreamDriver

SCHEMA = "bench_stream/v1"

#: Full-size run: enough churn that frontier re-embedding, shard
#: patching, rebalancing and hot swaps all engage repeatedly.
FULL = dict(num_nodes=400, target_edges=1600, feature_dim=24,
            hidden_dim=24, num_layers=2, num_parts=3, ticks=6,
            inserts_per_tick=12.0, deletes_per_tick=4.0,
            drifts_per_tick=4.0, requests_per_tick=36,
            embed_batch=64, max_batch=6, seed=0)

#: CI-sized run: the whole sweep finishes in a few seconds.
SMOKE = dict(num_nodes=90, target_edges=300, feature_dim=12,
             hidden_dim=12, num_layers=2, num_parts=3, ticks=3,
             inserts_per_tick=5.0, deletes_per_tick=1.0,
             drifts_per_tick=2.0, requests_per_tick=12,
             embed_batch=32, max_batch=4, seed=0)

MODES = ("steady", "churn")


def _stream_config(mode: str, params: Dict) -> StreamConfig:
    """The :class:`StreamConfig` for one benchmark regime."""
    base = dict(
        ticks=params["ticks"], seed=params["seed"],
        inserts_per_tick=params["inserts_per_tick"],
        deletes_per_tick=params["deletes_per_tick"],
        drifts_per_tick=params["drifts_per_tick"],
        requests_per_tick=params["requests_per_tick"],
        embed_batch=params["embed_batch"],
        max_batch=params["max_batch"])
    if mode == "churn":
        base.update(rebalance_threshold=1.01, auc_floor=1.5)
    return StreamConfig(**base)


def _fixture(params: Dict):
    """Seeded (model, graph, spec) shared by every cell of the sweep."""
    rng = np.random.default_rng(params["seed"])
    graph = synthetic_lp_graph(
        num_nodes=params["num_nodes"],
        target_edges=params["target_edges"],
        feature_dim=params["feature_dim"], num_communities=6, rng=rng)
    model = build_model("sage", params["feature_dim"],
                        hidden_dim=params["hidden_dim"],
                        num_layers=params["num_layers"],
                        seed=params["seed"])
    return model, graph, PartitionSpec("metis", mirror=True)


def run_bench(
    backends: Sequence[str] = ("serial", "thread", "process"),
    params: Optional[Dict] = None,
    modes: Sequence[str] = MODES,
) -> Dict:
    """Run the sweep and return the ``bench_stream/v1`` document.

    Every (mode, backend) cell replays the *same* seeded arrival plan
    and workload; the report digest must agree across backends within
    a mode.
    """
    params = dict(FULL if params is None else params)
    results: List[Dict] = []
    for mode in modes:
        for backend in backends:
            model, graph, spec = _fixture(params)
            driver = StreamDriver(model, graph, spec,
                                  params["num_parts"],
                                  _stream_config(mode, params),
                                  backend=backend)
            started = time.perf_counter()
            report = driver.run()
            wall = time.perf_counter() - started
            swap_lat = sorted(r.swap_latency_s for r in report.records
                              if r.swapped)
            stream_bytes = (report.comm["stream_feature_bytes"]
                            + report.comm["stream_structure_bytes"]
                            + report.comm["stream_sync_bytes"])
            results.append({
                "mode": mode,
                "backend": backend,
                "wall_s": round(wall, 4),
                "ticks": len(report.records),
                "events": report.counters["events"],
                "events_per_s": round(
                    report.counters["events"] / max(wall, 1e-9), 2),
                "requests": report.counters["requests"],
                "completed": report.counters["completed"],
                "rebalances": report.counters["rebalances"],
                "swaps": report.counters["swaps"],
                "rollbacks": report.counters["rollbacks"],
                "reembed_rows": report.counters["reembed_rows"],
                "swap_p50_ms": round(
                    swap_lat[len(swap_lat) // 2] * 1e3, 4)
                if swap_lat else None,
                "stream_mbytes": round(stream_bytes / 1e6, 4),
                "digest": report.digest(),
            })
    return {
        "schema": SCHEMA,
        "config": {**params, "backends": list(backends),
                   "modes": list(modes)},
        "host": _host_info(),
        "results": results,
    }


def _host_info() -> Dict:
    """CPU topology the sweep ran on (wall_s context only — the
    simulated streaming metrics are host-independent)."""
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1,
            "schedulable_cpus": schedulable}


def validate_document(doc: Dict) -> List[str]:
    """Schema + determinism check for a ``bench_stream/v1`` document.

    Beyond field presence, enforces the core contracts: within each
    mode every backend produced the same digest, the ``churn`` rows
    actually rebalanced and rolled back, and the ``steady`` rows
    actually hot-swapped.
    """
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    host = doc.get("host")
    if (not isinstance(host, dict)
            or not isinstance(host.get("schedulable_cpus"), int)):
        problems.append("host.schedulable_cpus missing")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        for key, kinds in (("mode", str), ("backend", str),
                           ("wall_s", (int, float)), ("ticks", int),
                           ("events", int),
                           ("events_per_s", (int, float)),
                           ("requests", int), ("completed", int),
                           ("rebalances", int), ("swaps", int),
                           ("rollbacks", int), ("reembed_rows", int),
                           ("stream_mbytes", (int, float)),
                           ("digest", str)):
            if not isinstance(row.get(key), kinds):
                problems.append(f"results[{i}].{key} missing or wrong type")
    for mode in {r.get("mode") for r in rows if isinstance(r, dict)}:
        digests = {r["backend"]: r.get("digest") for r in rows
                   if isinstance(r, dict) and r.get("mode") == mode}
        if len(set(digests.values())) > 1:
            problems.append(
                f"stream digests diverged across backends in mode "
                f"{mode!r}: {digests}")
    for row in rows:
        if not isinstance(row, dict):
            continue
        if row.get("mode") == "churn" and (row.get("rebalances") == 0
                                           or row.get("rollbacks") == 0):
            problems.append(
                f"churn row ({row.get('backend')}) fired no "
                "rebalance/rollback — triggers are dead")
        if row.get("mode") == "steady" and row.get("swaps") == 0:
            problems.append(
                f"steady row ({row.get('backend')}) never hot-swapped")
    return problems
