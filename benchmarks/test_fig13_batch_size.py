"""Figure 13: impact of batch size on SpLPG.

Paper shape: per-epoch communication decreases as batch size grows
(shared neighbors are transferred once per batch), while accuracy is
flat over a wide range and only degrades at extreme batch sizes.
"""

from conftest import run_once

from repro.experiments import run_fig13


def test_fig13_batch_size(benchmark, scale, report):
    batch_sizes = (32, 64, 128, 256)
    rows = run_once(benchmark, lambda: run_fig13(
        dataset="cora", batch_sizes=batch_sizes, p=4, scale=scale))
    report("Figure 13: batch size vs comm cost and accuracy (SpLPG)",
           rows, ["dataset", "batch_size", "comm_gb_per_epoch", "hits"])

    comms = [r["comm_gb_per_epoch"] for r in rows]
    # Communication per epoch decreases monotonically with batch size.
    assert all(a > b for a, b in zip(comms, comms[1:])), comms
