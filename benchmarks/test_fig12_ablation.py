"""Figure 12: ablation of full-neighbors and global negative samples.

Paper shape: SpLPG-- (neither) << SpLPG- (full neighbors only) <
SpLPG ~ SpLPG+ (both).  The two mechanisms together explain the
performance-drop problem.
"""

from conftest import run_once, strict

from repro.experiments import run_fig12


def test_fig12_ablation(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig12(
        datasets=("cora", "citeseer"), p=4, scale=scale))
    report("Figure 12: impact of full-neighbors and negative samples",
           rows, ["dataset", "variant", "hits", "auc"])

    if not strict(scale):
        return
    for dataset in ("cora", "citeseer"):
        ladder = {r["variant"]: r["hits"] for r in rows
                  if r["dataset"] == dataset}
        # Complete sharing always beats pure local training...
        assert ladder["SpLPG+"] > ladder["SpLPG--"], dataset
        # ...and SpLPG stays within reach of complete sharing.
        assert ladder["SpLPG"] >= 0.5 * ladder["SpLPG+"], dataset
        # SpLPG itself beats (or at worst statistically ties) the
        # no-sharing variant; the paper notes it can fall slightly
        # short on small sparse graphs, which is what the tolerance
        # absorbs.
        assert ladder["SpLPG"] >= 0.9 * ladder["SpLPG--"], dataset
    cora = {r["variant"]: r["hits"] for r in rows
            if r["dataset"] == "cora"}
    # On the denser graph the full ladder separates strictly.
    assert cora["SpLPG"] > cora["SpLPG--"]
