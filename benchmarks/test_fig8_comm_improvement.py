"""Figure 8: communication saving of SpLPG vs data-sharing baselines.

Paper shape: SpLPG transfers far less graph data per epoch than
PSGD-PA+, RandomTMA+ and SuperTMA+ for both GCN and GraphSAGE, with
savings up to ~80%.
"""

from conftest import run_once, strict

from repro.experiments import run_fig8


def test_fig8_comm_improvement(benchmark, scale, report):
    # Pubmed-scale graphs keep per-batch neighborhoods well below the
    # graph size, which is the regime where the paper's comm effects
    # are visible (tiny graphs saturate: every batch touches most of
    # the graph for every method).
    rows = run_once(benchmark, lambda: run_fig8(
        datasets=("pubmed",), p_values=(4, 8), gnn_types=("gcn", "sage"),
        scale=scale))
    report("Figure 8: comm saving of SpLPG vs '+' baselines", rows,
           ["dataset", "gnn", "p", "baseline", "splpg_gb", "baseline_gb",
            "saving"])

    if not strict(scale):
        return
    for row in rows:
        assert row["splpg_gb"] < row["baseline_gb"], row
        assert row["saving"] > 0.25, row
