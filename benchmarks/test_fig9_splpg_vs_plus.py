"""Figure 9: communication saving of SpLPG over SpLPG+.

Paper shape: with alpha = 0.15, sparsifying the shared subgraphs saves
roughly 60-85% of graph-data transfer across datasets and partition
counts.
"""

from conftest import run_once

from repro.experiments import run_fig9


def test_fig9_splpg_vs_plus(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig9(
        datasets=("cora", "citeseer", "pubmed"), p_values=(4, 8),
        scale=scale))
    report("Figure 9: comm saving of SpLPG over SpLPG+", rows,
           ["dataset", "p", "splpg_gb", "splpg_plus_gb", "saving"])

    for row in rows:
        assert row["splpg_gb"] < row["splpg_plus_gb"], row
        assert 0.3 < row["saving"] < 1.0, row
