"""Execution-backend wall-clock benchmark.

Sweeps backends × worker counts over one deterministic training
workload and reports real wall-clock seconds per run.  The workload is
chosen so per-batch compute dominates dispatch overhead — the regime
parallel backends are for — while the model-averaging sync keeps
inter-process traffic to one state exchange per epoch:

* medium synthetic community graph (per-batch matmuls in the
  milliseconds range, so pipe round-trips amortize),
* ``sync="model"`` with sync only at epoch end (the paper's headline
  synchronization mode),
* accuracy is recorded per run and must be bit-identical across
  backends at equal seed — the benchmark doubles as an equivalence
  check at realistic scale.

Emitted schema (``BENCH_backends.json``)::

    {
      "schema": "bench_backends/v1",
      "config": {...workload knobs...},
      "results": [
        {"backend": "serial", "workers": 4, "wall_s": 12.3,
         "hits": 0.81, "speedup_vs_serial": 1.0},
        ...
      ]
    }

``speedup_vs_serial`` compares against the serial run *at the same
worker count* (serial rows are exactly 1.0).

Run via ``scripts/bench.py`` (``--smoke`` for the CI-sized variant).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.frameworks import run_framework
from repro.distributed import TrainConfig
from repro.graph import split_edges, synthetic_lp_graph

SCHEMA = "bench_backends/v1"

#: Full-size workload: compute-heavy enough that 4-way process
#: parallelism wins clearly over serial on a laptop CPU.
FULL = dict(num_nodes=2400, target_edges=9600, feature_dim=64,
            hidden_dim=64, num_layers=2, fanouts=(10, 5), batch_size=192,
            epochs=2, framework="psgd_pa", seed=0)

#: CI-sized workload: the whole sweep finishes in ~10 seconds; numbers
#: only validate the schema, not the speedup claim.
SMOKE = dict(num_nodes=300, target_edges=1100, feature_dim=16,
             hidden_dim=16, num_layers=2, fanouts=(5, 5), batch_size=96,
             epochs=1, framework="psgd_pa", seed=0)


def _build_split(params: Dict):
    """Synthesize the benchmark graph and edge split (seeded)."""
    rng = np.random.default_rng(params["seed"])
    graph = synthetic_lp_graph(
        num_nodes=params["num_nodes"], target_edges=params["target_edges"],
        feature_dim=params["feature_dim"], num_communities=8, rng=rng)
    return split_edges(graph, rng=rng)


def _bench_config(params: Dict, backend: str, workers: int) -> TrainConfig:
    """TrainConfig for one benchmark cell."""
    return TrainConfig(
        hidden_dim=params["hidden_dim"], num_layers=params["num_layers"],
        fanouts=params["fanouts"], batch_size=params["batch_size"],
        epochs=params["epochs"], seed=params["seed"], sync="model",
        sync_every_batches=0, eval_every=max(params["epochs"], 1),
        backend=backend, num_workers=workers, observe=False)


def run_bench(
    workers_list: Sequence[int] = (2, 4),
    backends: Sequence[str] = ("serial", "thread", "process"),
    params: Optional[Dict] = None,
    repeats: int = 1,
) -> Dict:
    """Run the sweep and return the ``bench_backends/v1`` document.

    Each (backend, workers) cell trains the same workload from the
    same seed; ``wall_s`` is the best of ``repeats`` timings of
    ``run_framework`` (setup + train + eval), which is what a user of
    ``repro.run`` experiences.
    """
    params = dict(FULL if params is None else params)
    split = _build_split(params)
    results: List[Dict] = []
    serial_wall: Dict[int, float] = {}
    for workers in workers_list:
        for backend in backends:
            config = _bench_config(params, backend, workers)
            best = float("inf")
            hits = None
            for _ in range(max(1, repeats)):
                started = time.perf_counter()
                outcome = run_framework(
                    params["framework"], split, workers, config,
                    rng=np.random.default_rng(params["seed"]))
                wall = time.perf_counter() - started
                best = min(best, wall)
                hits = float(outcome.test.hits)
            if backend == "serial":
                serial_wall[workers] = best
            results.append({
                "backend": backend,
                "workers": int(workers),
                "wall_s": round(best, 4),
                "hits": hits,
            })
    for row in results:
        base = serial_wall.get(row["workers"])
        row["speedup_vs_serial"] = (
            round(base / row["wall_s"], 3) if base else None)
    return {
        "schema": SCHEMA,
        "config": {**params, "repeats": int(repeats),
                   "workers_list": [int(w) for w in workers_list],
                   "backends": list(backends), "sync": "model"},
        "host": _host_info(),
        "results": results,
    }


def _host_info() -> Dict:
    """CPU topology the sweep ran on.

    Wall-clock comparisons are only meaningful relative to this:
    parallel backends need more than one schedulable core to beat
    serial (on a single-core host every backend shares the same core
    and the parallel ones just add dispatch overhead).
    """
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1,
            "schedulable_cpus": schedulable}


def validate_document(doc: Dict) -> List[str]:
    """Schema check for a ``bench_backends/v1`` document.

    Returns a list of problems (empty when valid) — used by the CI
    smoke run so a drifted emitter fails loudly.
    """
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    host = doc.get("host")
    if (not isinstance(host, dict)
            or not isinstance(host.get("schedulable_cpus"), int)):
        problems.append("host.schedulable_cpus missing")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        for key, kinds in (("backend", str), ("workers", int),
                           ("wall_s", (int, float)),
                           ("hits", (int, float)),
                           ("speedup_vs_serial", (int, float))):
            if not isinstance(row.get(key), kinds):
                problems.append(f"results[{i}].{key} missing or wrong type")
    for workers in {r["workers"] for r in rows if isinstance(r, dict)}:
        cell = {r["backend"]: r for r in rows
                if isinstance(r, dict) and r.get("workers") == workers}
        hits = {r.get("hits") for r in cell.values()}
        if len(hits) > 1:
            problems.append(
                f"accuracy diverged across backends at {workers} workers: "
                f"{sorted(cell)} -> {sorted(hits)}")
    return problems


def check_speedup(doc: Dict, workers: int = 4) -> Optional[str]:
    """The headline claim: process beats serial at ``workers`` workers.

    Only meaningful with real parallel hardware — on a host with one
    schedulable core the claim is vacuously skipped (returns ``None``
    with a reason recorded in the document by the caller).  Returns a
    problem string when the claim fails on a multi-core host.
    """
    host = doc.get("host") or {}
    if int(host.get("schedulable_cpus") or 1) <= 1:
        return None
    rows = {(r["backend"], r["workers"]): r for r in doc["results"]}
    process = rows.get(("process", workers))
    if process is None:
        return f"no process@{workers} row to check the speedup claim"
    if process["speedup_vs_serial"] <= 1.0:
        return (f"process@{workers} did not beat serial: "
                f"{process['speedup_vs_serial']}x")
    return None
