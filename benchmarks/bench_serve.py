"""Serving load benchmark: open- and closed-loop harness.

Trains a small model once, exports a servable artifact, then replays
seeded request streams against a :class:`repro.serve.ServingCluster`
on every execution backend under two load models:

* ``open`` — Poisson arrivals at a fixed offered rate (exposes
  queueing and load shedding when offered load exceeds capacity);
* ``closed`` — a fixed client population with think time (measures
  latency at self-throttled, sustainable load).

Reported latency/throughput numbers live on the *simulated* hardware
clock (the same :class:`~repro.distributed.timeline.HardwareModel`
the training timeline uses); ``wall_s`` is the real time the harness
took.  Per mode, the report digest must be bit-identical across
backends — the benchmark doubles as the serving determinism check at
realistic request volume.

Emitted schema (``BENCH_serve.json``)::

    {
      "schema": "bench_serve/v1",
      "config": {...workload knobs...},
      "host": {"cpu_count": ..., "schedulable_cpus": ...},
      "results": [
        {"mode": "open", "backend": "serial", "wall_s": 0.8,
         "requests": 600, "completed": 594, "throughput_rps": 2405.1,
         "p50_latency_ms": 0.41, "p99_latency_ms": 2.93,
         "cache_hit_rate": 0.62, "shed_rate": 0.01,
         "digest": "..."},
        ...
      ]
    }

Run via ``scripts/bench.py --suite serve`` (``--smoke`` for the
CI-sized variant).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api import Session
from repro.distributed.store import RemoteGraphStore
from repro.graph import synthetic_lp_graph
from repro.serve import (
    ClosedLoopWorkload,
    OpenLoopWorkload,
    ServingCluster,
    synthetic_requests,
)

SCHEMA = "bench_serve/v1"

#: Full-size workload: enough requests that micro-batching, caching
#: and shedding all engage.
FULL = dict(num_nodes=600, target_edges=2400, feature_dim=32,
            workers=3, num_requests=600, rate_rps=4000.0, clients=16,
            think_time_s=5e-4, topk_fraction=0.2, k=10,
            max_batch=8, max_delay_s=1e-3, max_queue=48,
            embed_cache=512, neighbor_cache=128, seed=0)

#: CI-sized workload: the whole sweep finishes in a few seconds.
SMOKE = dict(num_nodes=150, target_edges=500, feature_dim=16,
             workers=3, num_requests=90, rate_rps=3000.0, clients=6,
             think_time_s=5e-4, topk_fraction=0.2, k=5,
             max_batch=4, max_delay_s=1e-3, max_queue=16,
             embed_cache=128, neighbor_cache=32, seed=0)

MODES = ("open", "closed")


def _export_artifact(params: Dict):
    """Train the benchmark model once; return (artifact, store)."""
    rng = np.random.default_rng(params["seed"])
    graph = synthetic_lp_graph(
        num_nodes=params["num_nodes"], target_edges=params["target_edges"],
        feature_dim=params["feature_dim"], num_communities=8, rng=rng)
    session = (Session(graph).partition(params["workers"])
               .framework("psgd_pa").scale("smoke")
               .configure(seed=params["seed"]).backend("serial"))
    session.train()
    artifact = session.export()
    store = RemoteGraphStore(session._trainer.partitioned.full)
    return artifact, store


def _make_workload(mode: str, params: Dict):
    """A fresh seeded workload for one benchmark cell."""
    requests = synthetic_requests(
        params["num_requests"], params["num_nodes"],
        seed=params["seed"] + 17,
        topk_fraction=params["topk_fraction"], k=params["k"])
    if mode == "open":
        return OpenLoopWorkload(requests, rate_rps=params["rate_rps"],
                                seed=params["seed"] + 29)
    return ClosedLoopWorkload(requests, num_clients=params["clients"],
                              think_time_s=params["think_time_s"])


def run_bench(
    backends: Sequence[str] = ("serial", "thread", "process"),
    params: Optional[Dict] = None,
    modes: Sequence[str] = MODES,
) -> Dict:
    """Run the sweep and return the ``bench_serve/v1`` document.

    Every (mode, backend) cell serves the *same* seeded request stream
    against the same artifact; the report digest must agree across
    backends within a mode.
    """
    params = dict(FULL if params is None else params)
    artifact, store = _export_artifact(params)
    results: List[Dict] = []
    for mode in modes:
        for backend in backends:
            cluster = ServingCluster(
                artifact, backend=backend, store=store,
                max_batch=params["max_batch"],
                max_delay_s=params["max_delay_s"],
                max_queue=params["max_queue"],
                embed_cache=params["embed_cache"],
                neighbor_cache=params["neighbor_cache"])
            workload = _make_workload(mode, params)
            started = time.perf_counter()
            with cluster:
                report = cluster.serve(workload)
            wall = time.perf_counter() - started
            results.append({
                "mode": mode,
                "backend": backend,
                "wall_s": round(wall, 4),
                "requests": len(report.outcomes),
                "completed": len(report.completed()),
                "throughput_rps": round(report.throughput_rps(), 2),
                "p50_latency_ms": round(
                    report.latency_percentile(50) * 1e3, 4),
                "p99_latency_ms": round(
                    report.latency_percentile(99) * 1e3, 4),
                "cache_hit_rate": round(report.cache_hit_rate(), 4),
                "shed_rate": round(report.shed_rate(), 4),
                "digest": report.digest(),
            })
    return {
        "schema": SCHEMA,
        "config": {**params, "backends": list(backends),
                   "modes": list(modes)},
        "host": _host_info(),
        "results": results,
    }


def _host_info() -> Dict:
    """CPU topology the sweep ran on (wall_s context only — the
    simulated serving metrics are host-independent)."""
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1,
            "schedulable_cpus": schedulable}


def validate_document(doc: Dict) -> List[str]:
    """Schema + determinism check for a ``bench_serve/v1`` document.

    Beyond field presence, enforces the core contract: within each
    mode, every backend produced the same report digest.
    """
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    host = doc.get("host")
    if (not isinstance(host, dict)
            or not isinstance(host.get("schedulable_cpus"), int)):
        problems.append("host.schedulable_cpus missing")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        for key, kinds in (("mode", str), ("backend", str),
                           ("wall_s", (int, float)),
                           ("requests", int), ("completed", int),
                           ("throughput_rps", (int, float)),
                           ("p50_latency_ms", (int, float)),
                           ("p99_latency_ms", (int, float)),
                           ("cache_hit_rate", (int, float)),
                           ("shed_rate", (int, float)),
                           ("digest", str)):
            if not isinstance(row.get(key), kinds):
                problems.append(f"results[{i}].{key} missing or wrong type")
    for mode in {r.get("mode") for r in rows if isinstance(r, dict)}:
        digests = {r["backend"]: r.get("digest") for r in rows
                   if isinstance(r, dict) and r.get("mode") == mode}
        if len(set(digests.values())) > 1:
            problems.append(
                f"serve digests diverged across backends in mode "
                f"{mode!r}: {digests}")
    return problems
