"""Table II: running time of the effective-resistance sparsifier.

Paper shape: seconds for small graphs, growing roughly linearly with
edge count and only weakly with the partition count p.
"""

from conftest import run_once

from repro.experiments import run_table2


def test_table2_sparsify_time(benchmark, scale, report):
    datasets = ("citeseer", "cora", "actor", "chameleon", "pubmed")
    rows = run_once(benchmark, lambda: run_table2(
        datasets=datasets, p_values=(4, 8, 16), scale=scale))
    report("Table II: sparsification running time (seconds)", rows,
           ["dataset", "num_edges", "sparsify_s_p4", "sparsify_s_p8",
            "sparsify_s_p16"])

    for row in rows:
        for p in (4, 8, 16):
            assert row[f"sparsify_s_p{p}"] > 0
    # Runtime grows with graph size: the largest dataset costs more
    # than the smallest at the same p.
    by_edges = sorted(rows, key=lambda r: r["num_edges"])
    assert by_edges[-1]["sparsify_s_p4"] >= by_edges[0]["sparsify_s_p4"] * 0.5
