"""Figure 10: accuracy improvement of SpLPG over vanilla baselines.

Paper shape: SpLPG clearly beats PSGD-PA, RandomTMA and SuperTMA (up to
~400% relative Hits improvement in the paper's runs).
"""

from conftest import run_once, strict

from repro.experiments import run_fig10


def test_fig10_acc_improvement(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig10(
        datasets=("cora",), p_values=(4,), gnn_types=("sage",),
        scale=scale))
    report("Figure 10: accuracy improvement of SpLPG over baselines", rows,
           ["dataset", "gnn", "p", "baseline", "splpg_hits",
            "baseline_hits", "improvement"])

    if not strict(scale):
        return
    for row in rows:
        assert row["splpg_hits"] > row["baseline_hits"], row
        assert row["improvement"] > 0, row
