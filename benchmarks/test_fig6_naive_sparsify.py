"""Figure 6: naive sparsify-then-train destroys link prediction.

Paper shape: training on the sparsified graph drops accuracy by a large
factor (up to 80%) because most positive samples vanish with the
removed edges.
"""

from conftest import run_once, strict

from repro.experiments import run_fig6


def test_fig6_naive_sparsify(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig6(
        datasets=("cora", "citeseer"), scale=scale))
    report("Figure 6: accuracy w/ vs w/o input-graph sparsification",
           rows, ["dataset", "variant", "hits", "edges_retained"])

    if not strict(scale):
        return
    for dataset in ("cora", "citeseer"):
        dense = next(r for r in rows if r["dataset"] == dataset
                     and r["variant"] == "w/o sparsification")
        sparse = next(r for r in rows if r["dataset"] == dataset
                      and r["variant"] == "w/ sparsification")
        assert sparse["edges_retained"] < 0.25
        assert sparse["hits"] < dense["hits"], (
            f"sparsified training should underperform on {dataset}")
