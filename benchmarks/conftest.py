"""Shared benchmark configuration.

Each benchmark file regenerates one table or figure of the paper.  The
experiment bodies run once per benchmark (``pedantic`` mode) and print
the regenerated rows so the numbers are visible in the benchmark log.

Environment:
    REPRO_BENCH_SCALE = smoke | quick | paper   (default: quick)

``paper`` uses Table I dataset sizes and the paper's hyperparameters —
expect hours.  ``quick`` (default) preserves every qualitative
relationship in minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale, format_rows


def _resolve_scale() -> ExperimentScale:
    mode = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()
    if mode == "smoke":
        return ExperimentScale.smoke()
    if mode == "paper":
        return ExperimentScale.paper()
    return ExperimentScale.quick()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return _resolve_scale()


@pytest.fixture
def report():
    """Print regenerated rows under a titled banner."""

    def _report(title: str, rows, columns) -> None:
        banner = f"=== {title} ==="
        print()
        print(banner)
        print(format_rows(rows, columns))

    return _report


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def strict(scale: ExperimentScale) -> bool:
    """Whether the paper-shape assertions should be enforced.

    At ``smoke`` scale the graphs are tiny and the training budget is a
    few epochs, so accuracy orderings are noise-dominated; benches then
    only print the regenerated rows.  ``quick`` (the default) and
    ``paper`` scales enforce every shape assertion.
    """
    return scale.dataset_scale >= 0.12 and scale.epochs >= 8
