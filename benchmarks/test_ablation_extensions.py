"""Extension ablations (beyond the paper's figures; see DESIGN.md §4).

* sparsifier sampling distribution: approx-ER (paper) vs exact-ER vs
  uniform,
* epoch-scoped remote-feature caching,
* gradient vs model averaging,
* the full GNN zoo including the GIN extension.
"""

from conftest import run_once, strict

from repro.experiments import (
    run_feature_cache_ablation,
    run_gnn_zoo,
    run_negative_sampler_ablation,
    run_partitioner_ablation,
    run_sparsifier_ablation,
    run_sync_ablation,
)


def test_sparsifier_kinds(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_sparsifier_ablation(
        dataset="cora", p=4, scale=scale))
    report("Ablation: sparsifier sampling distribution (SpLPG)", rows,
           ["dataset", "sparsifier", "hits", "auc", "comm_gb_per_epoch"])

    by = {r["sparsifier"]: r for r in rows}
    # The cheap approximation should track exact effective resistance
    # closely on both axes (Theorem 2 in action).
    assert by["approx_er"]["comm_gb_per_epoch"] > 0
    assert by["exact_er"]["comm_gb_per_epoch"] > 0
    if strict(scale):
        ratio = (by["approx_er"]["comm_gb_per_epoch"]
                 / by["exact_er"]["comm_gb_per_epoch"])
        assert 0.5 < ratio < 2.0


def test_feature_cache(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_feature_cache_ablation(
        dataset="cora", p=4, scale=scale))
    report("Ablation: epoch-scoped remote feature cache", rows,
           ["dataset", "framework", "cache", "hits", "comm_gb_per_epoch"])

    for name in ("splpg", "splpg_plus"):
        off = next(r for r in rows if r["framework"] == name
                   and not r["cache"])
        on = next(r for r in rows if r["framework"] == name and r["cache"])
        # Caching can only remove transfers, never add them, and does
        # not change what is computed.
        assert on["comm_gb_per_epoch"] < off["comm_gb_per_epoch"], name


def test_sync_strategies(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_sync_ablation(
        dataset="cora", p=4, scale=scale))
    report("Ablation: gradient vs model averaging (SpLPG)", rows,
           ["dataset", "sync", "hits", "auc", "sync_gb"])

    for row in rows:
        assert row["sync_gb"] > 0
    if strict(scale):
        # Paper: both synchronization modes end up comparable; at our
        # small epoch budget per-round averaging must at least be in
        # the same league as gradient averaging.
        by = {r["sync"]: r["auc"] for r in rows}
        assert by["model/round"] > 0.5
        assert by["grad"] > 0.5


def test_partitioner_quality(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_partitioner_ablation(
        dataset="pubmed", p=4, scale=scale))
    report("Ablation: partitioner quality vs SpLPG communication", rows,
           ["dataset", "partitioner", "cut_fraction", "replication",
            "comm_gb_per_epoch"])

    by = {r["partitioner"]: r for r in rows}
    # Edge-cut ordering is structural and holds at any scale.
    assert by["metis"]["cut_fraction"] < by["ldg"]["cut_fraction"] \
        < by["random_tma"]["cut_fraction"]
    if strict(scale):
        # Worse cuts cost more communication under SpLPG.
        assert by["metis"]["comm_gb_per_epoch"] < \
            by["random_tma"]["comm_gb_per_epoch"]


def test_negative_sampling_strategies(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_negative_sampler_ablation(
        dataset="cora", p=4, scale=scale))
    report("Ablation: training-time negative sampling (SpLPG)", rows,
           ["dataset", "strategy", "hits", "auc"])

    assert {r["strategy"] for r in rows} == {"uniform", "degree",
                                             "in_batch"}
    for row in rows:
        assert 0.0 <= row["hits"] <= 1.0


def test_gnn_zoo(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_gnn_zoo(
        dataset="cora", p=4, scale=scale))
    report("Extension: all implemented convolutions under SpLPG", rows,
           ["dataset", "gnn", "centralized_hits", "splpg_hits"])

    assert {r["gnn"] for r in rows} == {"gcn", "sage", "gat", "gatv2",
                                        "gin"}
    for row in rows:
        assert row["splpg_hits"] >= 0.0
