"""Accuracy-vs-communication frontier across partition strategies.

The paper's central design choice — edge-cut METIS plus sparsified
full-neighbor sharing (SpLPG) — is benchmarked head-to-head against its
published competitors, each expressed as a (partition strategy,
framework) cell:

==================  ============  =====================================
cell                framework     what it reproduces
==================  ============  =====================================
metis/psgd_pa       psgd_pa       vanilla edge-cut baseline
metis+mirror/splpg  splpg         the paper (mirrored METIS +
                                  sparsified sharing)
random_tma/…        random_tma    Zhu et al.'s randomized partitions
super_tma/…         super_tma     " (super-node variant)
ldg/psgd_pa         psgd_pa       streaming greedy partitioner
vertex_cut/…        vertex_cut    communication-free vertex cut
                                  (edge-partitioned, mirrored vertices)
==================  ============  =====================================

Per cell the sweep records test AUC / Hits@k (the accuracy axis),
the full CommMeter byte ledger — feature, structure and sync buckets
plus vertex cut's replica-averaging share — and the layout's
replication factor and cut fraction.  Every cell runs on every
requested backend from the same seed; the validator enforces
bit-identical accuracy *and* byte ledgers across backends, and the
vertex-cut signature (zero training-time feature fetches, nonzero
replica-sync bytes).

Emitted schema (``BENCH_partition.json``)::

    {
      "schema": "bench_partition/v1",
      "config": {...workload knobs...},
      "results": [
        {"cell": "vertex_cut/vertex_cut", "strategy": "vertex_cut",
         "framework": "vertex_cut", "mirror": false, "backend": "serial",
         "auc": 0.79, "hits": 0.31, "feature_bytes": 0,
         "structure_bytes": 0, "sync_bytes": 123, "replica_sync_bytes": 45,
         "replication_factor": 2.1, "cut_fraction": 0.4, "wall_s": 1.0},
        ...
      ]
    }

Run via ``scripts/bench.py --suite partition`` (``--smoke`` for the
CI-sized variant).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.frameworks import run_framework
from repro.distributed import TrainConfig
from repro.graph import split_edges, synthetic_lp_graph
from repro.partition import PartitionSpec, edge_cut

SCHEMA = "bench_partition/v1"

#: Full-size workload: large enough that the strategies' communication
#: profiles separate clearly on the frontier.
FULL = dict(num_nodes=900, target_edges=3600, feature_dim=32,
            hidden_dim=32, num_layers=2, fanouts=(8, 5), batch_size=96,
            epochs=3, workers=4, seed=0)

#: CI-sized workload: the whole sweep finishes in seconds; numbers
#: only validate the schema and the cross-backend equality gate.
SMOKE = dict(num_nodes=260, target_edges=950, feature_dim=16,
             hidden_dim=16, num_layers=2, fanouts=(5, 5), batch_size=64,
             epochs=2, workers=3, seed=0)

#: The frontier cells: each registered strategy paired with the
#: framework that consumes it (mirrored METIS rides with SpLPG).
CELLS = (
    {"strategy": "metis", "mirror": False, "framework": "psgd_pa"},
    {"strategy": "metis", "mirror": True, "framework": "splpg"},
    {"strategy": "random_tma", "mirror": False, "framework": "random_tma"},
    {"strategy": "super_tma", "mirror": False, "framework": "super_tma"},
    {"strategy": "ldg", "mirror": False, "framework": "psgd_pa"},
    {"strategy": "vertex_cut", "mirror": False, "framework": "vertex_cut"},
)


def _build_split(params: Dict):
    """Synthesize the benchmark graph and edge split (seeded)."""
    rng = np.random.default_rng(params["seed"])
    graph = synthetic_lp_graph(
        num_nodes=params["num_nodes"], target_edges=params["target_edges"],
        feature_dim=params["feature_dim"], num_communities=8, rng=rng)
    return split_edges(graph, rng=rng)


def _cell_label(cell: Dict) -> str:
    """Stable ``strategy[/+mirror]/framework`` label for one cell."""
    strategy = cell["strategy"] + ("+mirror" if cell["mirror"] else "")
    return f"{strategy}/{cell['framework']}"


def _cell_spec(cell: Dict) -> PartitionSpec:
    """The PartitionSpec one frontier cell trains under."""
    return PartitionSpec(strategy=cell["strategy"], mirror=cell["mirror"])


def _bench_config(params: Dict, cell: Dict, backend: str) -> TrainConfig:
    """TrainConfig for one (cell, backend) run."""
    return TrainConfig(
        hidden_dim=params["hidden_dim"], num_layers=params["num_layers"],
        fanouts=params["fanouts"], batch_size=params["batch_size"],
        epochs=params["epochs"], seed=params["seed"],
        eval_every=max(params["epochs"], 1), backend=backend,
        num_workers=params["workers"], observe=False,
        partition=_cell_spec(cell))


def _layout_stats(split, cell: Dict, params: Dict) -> Dict:
    """Replication factor and cut fraction of one cell's layout.

    Rebuilds the partitioning exactly as ``build_trainer`` does (fresh
    ``default_rng(seed)``; the partitioner is that generator's first
    consumer), so the stats describe precisely the layout each backend
    trained on.
    """
    graph = split.train_graph
    partitioned = _cell_spec(cell).build(
        graph, params["workers"], rng=np.random.default_rng(params["seed"]))
    cut = edge_cut(graph, partitioned.node_owner)
    return {
        "replication_factor": round(float(partitioned.replication_factor()),
                                    6),
        "cut_fraction": round(cut / max(graph.num_edges, 1), 6),
    }


def run_bench(
    cells: Sequence[Dict] = CELLS,
    backends: Sequence[str] = ("serial", "thread", "process"),
    params: Optional[Dict] = None,
) -> Dict:
    """Run the sweep and return the ``bench_partition/v1`` document.

    Every cell trains the same workload from the same seed on every
    backend; accuracy and the full byte ledger must agree bit-for-bit
    across backends (checked by :func:`validate_document`).
    """
    params = dict(FULL if params is None else params)
    split = _build_split(params)
    results: List[Dict] = []
    for cell in cells:
        layout = _layout_stats(split, cell, params)
        for backend in backends:
            config = _bench_config(params, cell, backend)
            started = time.perf_counter()
            outcome = run_framework(
                cell["framework"], split, params["workers"], config,
                rng=np.random.default_rng(params["seed"]))
            wall = time.perf_counter() - started
            total = outcome.comm_total
            results.append({
                "cell": _cell_label(cell),
                "strategy": cell["strategy"],
                "mirror": bool(cell["mirror"]),
                "framework": cell["framework"],
                "backend": backend,
                "auc": float(outcome.test.auc),
                "hits": float(outcome.test.hits),
                "feature_bytes": int(total.feature_bytes),
                "structure_bytes": int(total.structure_bytes),
                "sync_bytes": int(total.sync_bytes),
                "replica_sync_bytes": int(
                    outcome.sync_stats.get("replica_sync_bytes", 0)),
                **layout,
                "wall_s": round(wall, 4),
            })
    return {
        "schema": SCHEMA,
        "config": {**params, "backends": list(backends),
                   "cells": [_cell_label(c) for c in cells]},
        "host": _host_info(),
        "results": results,
    }


def _host_info() -> Dict:
    """CPU topology the sweep ran on (context for wall_s columns)."""
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1,
            "schedulable_cpus": schedulable}


def validate_document(doc: Dict) -> List[str]:
    """Schema + equivalence check for a ``bench_partition/v1`` document.

    Beyond field presence, enforces the claims the artifact exists to
    make: the frontier covers at least six strategy labels, every
    cell's accuracy *and* byte ledger are bit-identical across the
    backends it ran on, and the vertex-cut cells show the expected
    communication signature — zero training-time feature-fetch bytes
    with nonzero replica-sync bytes.
    """
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        for key, kinds in (("cell", str), ("strategy", str),
                           ("mirror", bool), ("framework", str),
                           ("backend", str), ("auc", (int, float)),
                           ("hits", (int, float)), ("feature_bytes", int),
                           ("structure_bytes", int), ("sync_bytes", int),
                           ("replica_sync_bytes", int),
                           ("replication_factor", (int, float)),
                           ("cut_fraction", (int, float)),
                           ("wall_s", (int, float))):
            if not isinstance(row.get(key), kinds):
                problems.append(f"results[{i}].{key} missing or wrong type")
    labels = {(r.get("strategy"), r.get("mirror"))
              for r in rows if isinstance(r, dict)}
    if len(labels) < 6:
        problems.append(
            f"frontier must cover >= 6 strategy labels, got "
            f"{sorted(map(str, labels))}")
    for cell in {r["cell"] for r in rows if isinstance(r, dict)}:
        group = [r for r in rows
                 if isinstance(r, dict) and r.get("cell") == cell]
        for key in ("auc", "hits", "feature_bytes", "structure_bytes",
                    "sync_bytes", "replica_sync_bytes"):
            values = {r.get(key) for r in group}
            if len(values) > 1:
                problems.append(
                    f"{key} diverged across backends in cell {cell!r}: "
                    f"{sorted(map(str, values))}")
    vc_rows = [r for r in rows
               if isinstance(r, dict) and r.get("strategy") == "vertex_cut"]
    if not vc_rows:
        problems.append("frontier must include a vertex_cut cell")
    for row in vc_rows:
        if row.get("feature_bytes") != 0:
            problems.append(
                "vertex_cut must fetch zero training-time feature bytes, "
                f"got {row.get('feature_bytes')} on {row.get('backend')}")
        if not row.get("replica_sync_bytes"):
            problems.append(
                "vertex_cut must charge nonzero replica-sync bytes, got "
                f"{row.get('replica_sync_bytes')} on {row.get('backend')}")
    return problems
