"""Figure 4: complete data-sharing recovers accuracy at huge comm cost.

Paper shape: PSGD-PA+/RandomTMA+/SuperTMA+ reach (near-)centralized
accuracy, but graph-data transfer per epoch is enormous compared to the
zero transfer of the vanilla variants.
"""

from conftest import run_once, strict

from repro.experiments import run_fig3, run_fig4


def test_fig4_datasharing(benchmark, scale, report):
    def body():
        plus_rows = run_fig4(datasets=("cora",), p_values=(4,), scale=scale)
        vanilla_rows = run_fig3(datasets=("cora",), p_values=(4,),
                                scale=scale,
                                frameworks=("psgd_pa", "random_tma",
                                            "super_tma"))
        return plus_rows, vanilla_rows

    plus_rows, vanilla_rows = run_once(benchmark, body)
    report("Figure 4: accuracy + comm of complete data-sharing variants",
           plus_rows,
           ["dataset", "p", "framework", "hits", "comm_gb_per_epoch"])

    if not strict(scale):
        return
    central = next(r for r in plus_rows if r["framework"] == "Centralized")
    plus = [r for r in plus_rows if r["framework"].endswith("+")]
    vanilla_best = max(r["hits"] for r in vanilla_rows)

    # Sharing closes (most of) the gap to centralized ...
    for row in plus:
        assert row["hits"] >= vanilla_best * 0.9
    assert max(r["hits"] for r in plus) >= 0.6 * central["hits"]
    # ... and costs real communication.
    for row in plus:
        assert row["comm_gb_per_epoch"] > 0
