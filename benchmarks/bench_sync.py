"""Staleness–accuracy frontier across synchronisation modes.

Sweeps the :class:`TrainConfig(sync=)` axis — ``barrier`` and the
asynchronous families (``ps`` at several ``max_staleness`` bounds,
``async`` at several ``pull_prob`` rates, ``local_sgd`` at several
``sync_every`` periods) — over one deterministic link-prediction
workload and records, per cell:

* final test AUC / Hits@k — the accuracy side of the frontier,
* observed mean and max push staleness (from
  ``TrainResult.sync_stats``) — the staleness side,
* synchronisation bytes from the CommMeter ledger — what the
  trade-off buys (PS push/pull traffic vs collective rounds),
* wall-clock seconds per run.

Every cell runs on every requested backend from the same seed and the
validator enforces bit-identical accuracy across backends — the
frontier doubles as an equivalence proof for the :class:`SyncPlan`
determinism story.

Emitted schema (``BENCH_sync.json``)::

    {
      "schema": "bench_sync/v1",
      "config": {...workload knobs...},
      "results": [
        {"cell": "ps/staleness=4", "mode": "ps", "backend": "serial",
         "knob": {"max_staleness": 4}, "auc": 0.81, "hits": 0.33,
         "mean_staleness": 1.9, "max_staleness": 6.0,
         "sync_bytes": 123456, "wall_s": 1.2},
        ...
      ]
    }

Run via ``scripts/bench.py --suite sync`` (``--smoke`` for the
CI-sized variant).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.frameworks import run_framework
from repro.distributed import TrainConfig
from repro.graph import split_edges, synthetic_lp_graph

SCHEMA = "bench_sync/v1"

#: Full-size workload: enough rounds per epoch that staleness has room
#: to accumulate and the frontier separates visibly.
FULL = dict(num_nodes=1200, target_edges=4800, feature_dim=32,
            hidden_dim=32, num_layers=2, fanouts=(8, 5), batch_size=96,
            epochs=3, workers=4, framework="splpg", seed=0)

#: CI-sized workload: the whole sweep finishes in seconds; numbers
#: only validate the schema and the cross-backend equality gate.
SMOKE = dict(num_nodes=260, target_edges=950, feature_dim=16,
             hidden_dim=16, num_layers=2, fanouts=(5, 5), batch_size=64,
             epochs=2, workers=3, framework="splpg", seed=0)

#: The frontier cells: one barrier anchor plus each asynchronous
#: family at several points along its staleness knob.
CELLS = (
    {"mode": "barrier"},
    {"mode": "local_sgd", "sync_every": 2},
    {"mode": "local_sgd", "sync_every": 8},
    {"mode": "ps", "max_staleness": 1},
    {"mode": "ps", "max_staleness": 4},
    {"mode": "ps", "max_staleness": 16},
    {"mode": "async", "pull_prob": 0.5},
    {"mode": "async", "pull_prob": 0.1},
)


def _build_split(params: Dict):
    """Synthesize the benchmark graph and edge split (seeded)."""
    rng = np.random.default_rng(params["seed"])
    graph = synthetic_lp_graph(
        num_nodes=params["num_nodes"], target_edges=params["target_edges"],
        feature_dim=params["feature_dim"], num_communities=8, rng=rng)
    return split_edges(graph, rng=rng)


def _cell_label(cell: Dict) -> str:
    """Stable ``mode/knob=value`` label for one frontier cell."""
    knobs = {k: v for k, v in cell.items() if k != "mode"}
    if not knobs:
        return cell["mode"]
    key, value = next(iter(knobs.items()))
    return f"{cell['mode']}/{key}={value}"


def _bench_config(params: Dict, cell: Dict, backend: str) -> TrainConfig:
    """TrainConfig for one (cell, backend) run."""
    knobs = {k: v for k, v in cell.items() if k != "mode"}
    return TrainConfig(
        hidden_dim=params["hidden_dim"], num_layers=params["num_layers"],
        fanouts=params["fanouts"], batch_size=params["batch_size"],
        epochs=params["epochs"], seed=params["seed"], sync=cell["mode"],
        eval_every=max(params["epochs"], 1), backend=backend,
        num_workers=params["workers"], observe=False, **knobs)


def run_bench(
    cells: Sequence[Dict] = CELLS,
    backends: Sequence[str] = ("serial", "thread", "process"),
    params: Optional[Dict] = None,
) -> Dict:
    """Run the sweep and return the ``bench_sync/v1`` document.

    Every cell trains the same workload from the same seed on every
    backend; accuracy must agree bit-for-bit across backends (checked
    by :func:`validate_document`), staleness and byte columns come
    from the run's own ledgers.
    """
    params = dict(FULL if params is None else params)
    split = _build_split(params)
    results: List[Dict] = []
    for cell in cells:
        for backend in backends:
            config = _bench_config(params, cell, backend)
            started = time.perf_counter()
            outcome = run_framework(
                params["framework"], split, params["workers"], config,
                rng=np.random.default_rng(params["seed"]))
            wall = time.perf_counter() - started
            stats = outcome.sync_stats
            results.append({
                "cell": _cell_label(cell),
                "mode": cell["mode"],
                "backend": backend,
                "knob": {k: v for k, v in cell.items() if k != "mode"},
                "auc": float(outcome.test.auc),
                "hits": float(outcome.test.hits),
                "mean_staleness": float(stats.get("mean_staleness", 0.0)),
                "max_staleness": float(stats.get("max_staleness", 0.0)),
                "sync_bytes": int(outcome.comm_total.sync_bytes),
                "wall_s": round(wall, 4),
            })
    return {
        "schema": SCHEMA,
        "config": {**params, "backends": list(backends),
                   "cells": [_cell_label(c) for c in cells]},
        "host": _host_info(),
        "results": results,
    }


def _host_info() -> Dict:
    """CPU topology the sweep ran on (context for wall_s columns)."""
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1,
            "schedulable_cpus": schedulable}


def validate_document(doc: Dict) -> List[str]:
    """Schema + equivalence check for a ``bench_sync/v1`` document.

    Beyond field presence, enforces the two claims the artifact
    exists to make: the frontier covers at least three distinct sync
    modes, and every cell's accuracy is bit-identical across the
    backends it ran on.
    """
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        for key, kinds in (("cell", str), ("mode", str), ("backend", str),
                           ("knob", dict), ("auc", (int, float)),
                           ("hits", (int, float)),
                           ("mean_staleness", (int, float)),
                           ("max_staleness", (int, float)),
                           ("sync_bytes", int), ("wall_s", (int, float))):
            if not isinstance(row.get(key), kinds):
                problems.append(f"results[{i}].{key} missing or wrong type")
    modes = {r.get("mode") for r in rows if isinstance(r, dict)}
    if len(modes) < 3:
        problems.append(
            f"frontier must cover >= 3 sync modes, got {sorted(modes)}")
    for cell in {r["cell"] for r in rows if isinstance(r, dict)}:
        group = [r for r in rows
                 if isinstance(r, dict) and r.get("cell") == cell]
        for key in ("auc", "hits", "sync_bytes"):
            values = {r.get(key) for r in group}
            if len(values) > 1:
                problems.append(
                    f"{key} diverged across backends in cell {cell!r}: "
                    f"{sorted(map(str, values))}")
    return problems
