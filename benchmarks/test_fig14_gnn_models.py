"""Figure 14: SpLPG is robust across GNN architectures.

Paper shape: for GCN, GraphSAGE, GAT and GATv2, SpLPG converges to a
similar accuracy level as centralized training, while the vanilla
baseline stays below.
"""

from conftest import run_once, strict

from repro.experiments import run_fig14


def test_fig14_gnn_models(benchmark, scale, report):
    rows = run_once(benchmark, lambda: run_fig14(
        datasets=("cora",), p=4, scale=scale))
    printable = [{k: v for k, v in r.items() if k != "val_curve"}
                 for r in rows]
    report("Figure 14: accuracy across GNN models (final Hits)",
           printable, ["dataset", "gnn", "framework", "hits"])

    if not strict(scale):
        return
    by = {(r["gnn"], r["framework"]): r for r in rows}
    for gnn in ("gcn", "sage", "gat", "gatv2"):
        splpg = by[(gnn, "SpLPG")]
        vanilla = by[(gnn, "PSGD-PA")]
        assert splpg["hits"] >= vanilla["hits"], gnn
        assert len(splpg["val_curve"]) >= 2
