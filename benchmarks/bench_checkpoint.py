"""Checkpoint/resume benchmark: durability cost and bit-identity proof.

For every execution backend the suite runs three trainings of one
deterministic link-prediction workload from the same seed:

* **baseline** — uninterrupted, no checkpointing: the ground-truth
  :meth:`~repro.distributed.trainer.TrainResult.digest`;
* **checkpointed** — same run with ``checkpoint_dir`` set and
  ``checkpoint_every=1``: its digest must equal the baseline
  (durability must not perturb the trajectory) and the wall-clock
  delta is the headline overhead number;
* **crash + resume** — same run again, but a round hook aborts the
  coordinator loop mid-epoch; a fresh trainer is rebuilt from the
  durable snapshot via :func:`repro.checkpoint.rebuild_trainer` and
  trained to completion.  Its digest must equal the baseline too —
  the bit-identical-resumption contract.

Alongside, the store itself is timed in isolation: one
``capture_trainer_state`` + :meth:`CheckpointStore.write` and one
:meth:`CheckpointStore.latest` round-trip, plus the snapshot payload
size on disk.

The validator enforces digest equality within every backend row *and*
across backends (one workload, one trajectory, nine digests, one
value).

Emitted schema (``BENCH_checkpoint.json``)::

    {
      "schema": "bench_checkpoint/v1",
      "config": {...workload knobs...},
      "results": [
        {"backend": "serial", "digest": "...", "ckpt_digest": "...",
         "resume_digest": "...", "resumed_from": 1,
         "snapshot_nbytes": 123456, "write_ms": 1.2, "read_ms": 0.8,
         "wall_s": 1.0, "ckpt_wall_s": 1.1},
        ...
      ]
    }

Run via ``scripts/bench.py --suite checkpoint`` (``--smoke`` for the
CI-sized variant).
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.checkpoint import load_checkpoint, rebuild_trainer
from repro.checkpoint.state import capture_trainer_state
from repro.checkpoint.store import CheckpointStore
from repro.core.frameworks import FRAMEWORKS, build_trainer
from repro.distributed import TrainConfig
from repro.distributed import trainer as trainer_mod
from repro.graph import split_edges, synthetic_lp_graph

SCHEMA = "bench_checkpoint/v1"

#: Full-size workload: several epochs so the checkpoint cadence and
#: the mid-run crash both land well inside the run.
FULL = dict(num_nodes=900, target_edges=3600, feature_dim=32,
            hidden_dim=32, num_layers=2, fanouts=(8, 5), batch_size=96,
            epochs=4, workers=3, framework="splpg", sync="barrier",
            crash_epoch=2, seed=7)

#: CI-sized workload: the whole sweep finishes in seconds; numbers
#: only validate the schema and the digest-equality gates.
SMOKE = dict(num_nodes=240, target_edges=900, feature_dim=16,
             hidden_dim=16, num_layers=2, fanouts=(5, 5), batch_size=64,
             epochs=3, workers=2, framework="splpg", sync="barrier",
             crash_epoch=1, seed=7)


class _PlannedCrash(RuntimeError):
    """Raised by the round hook to abort the coordinator loop."""


def _build_split(params: Dict):
    """Synthesize the benchmark graph and edge split (seeded)."""
    rng = np.random.default_rng(params["seed"])
    graph = synthetic_lp_graph(
        num_nodes=params["num_nodes"], target_edges=params["target_edges"],
        feature_dim=params["feature_dim"], num_communities=8, rng=rng)
    return split_edges(graph, rng=rng)


def _bench_config(params: Dict, backend: str,
                  checkpoint_dir: Optional[str] = None) -> TrainConfig:
    """TrainConfig for one run of the workload."""
    return TrainConfig(
        hidden_dim=params["hidden_dim"], num_layers=params["num_layers"],
        fanouts=params["fanouts"], batch_size=params["batch_size"],
        epochs=params["epochs"], seed=params["seed"],
        sync=params["sync"], eval_every=max(params["epochs"], 1),
        backend=backend, num_workers=params["workers"], observe=False,
        checkpoint_dir=checkpoint_dir, checkpoint_every=1)


def _fresh_trainer(params: Dict, split, backend: str,
                   checkpoint_dir: Optional[str] = None):
    """Build one trainer for the workload (seeded)."""
    config = _bench_config(params, backend, checkpoint_dir)
    return build_trainer(FRAMEWORKS[params["framework"]], split,
                         params["workers"], config,
                         rng=np.random.default_rng(params["seed"]))


def _crash_resume_digest(params: Dict, split, backend: str,
                         ckpt_dir: str) -> Dict:
    """Crash mid-epoch, resume from disk, return digest + resume point."""
    crash_epoch = params["crash_epoch"]

    def _hook(_trainer, epoch: int, rnd: int) -> None:
        """Abort the coordinator loop at the planned point."""
        if epoch == crash_epoch and rnd == 0:
            raise _PlannedCrash(f"planned crash at epoch {epoch}")

    trainer = _fresh_trainer(params, split, backend, ckpt_dir)
    previous = trainer_mod.set_round_hook(_hook)
    try:
        trainer.train()
        raise AssertionError("planned crash never fired — raise "
                             "crash_epoch below epochs")
    except _PlannedCrash:
        pass
    finally:
        trainer_mod.set_round_hook(previous)

    meta, state = load_checkpoint(ckpt_dir)
    resumed = rebuild_trainer(meta, state, split)
    result = resumed.train()
    return {"digest": result.digest(), "resumed_from": int(meta["epoch"])}


def _store_roundtrip(params: Dict, split, ckpt_dir: str) -> Dict:
    """Time one snapshot write and one verified read in isolation."""
    trainer = _fresh_trainer(params, split, "serial")
    trainer.backend.bind(trainer)
    try:
        state = capture_trainer_state(trainer, epoch=0, rnd=0)
    finally:
        trainer.backend.close()
    store = CheckpointStore(ckpt_dir)
    started = time.perf_counter()
    info = store.write(state, epoch=0, rnd=0)
    write_ms = (time.perf_counter() - started) * 1000.0
    started = time.perf_counter()
    store.latest()
    read_ms = (time.perf_counter() - started) * 1000.0
    return {"snapshot_nbytes": int(info.nbytes),
            "write_ms": round(write_ms, 3), "read_ms": round(read_ms, 3)}


def run_bench(
    backends: Sequence[str] = ("serial", "thread", "process"),
    params: Optional[Dict] = None,
) -> Dict:
    """Run the sweep and return the ``bench_checkpoint/v1`` document."""
    params = dict(FULL if params is None else params)
    if params["crash_epoch"] < 1 or params["crash_epoch"] >= params["epochs"]:
        raise ValueError("crash_epoch must land strictly inside the run "
                         "with at least one durable checkpoint before it")
    split = _build_split(params)
    results: List[Dict] = []
    for backend in backends:
        started = time.perf_counter()
        baseline = _fresh_trainer(params, split, backend).train()
        wall = time.perf_counter() - started

        with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
            ckpt_dir = os.path.join(tmp, "run")
            started = time.perf_counter()
            checkpointed = _fresh_trainer(
                params, split, backend, ckpt_dir).train()
            ckpt_wall = time.perf_counter() - started
            timings = _store_roundtrip(
                params, split, os.path.join(tmp, "roundtrip"))
            resume = _crash_resume_digest(
                params, split, backend, os.path.join(tmp, "crash"))

        results.append({
            "backend": backend,
            "digest": baseline.digest(),
            "ckpt_digest": checkpointed.digest(),
            "resume_digest": resume["digest"],
            "resumed_from": resume["resumed_from"],
            "snapshot_nbytes": timings["snapshot_nbytes"],
            "write_ms": timings["write_ms"],
            "read_ms": timings["read_ms"],
            "wall_s": round(wall, 4),
            "ckpt_wall_s": round(ckpt_wall, 4),
        })
    return {
        "schema": SCHEMA,
        "config": {**params, "backends": list(backends),
                   "fanouts": list(params["fanouts"])},
        "host": _host_info(),
        "results": results,
    }


def _host_info() -> Dict:
    """CPU topology the sweep ran on (context for wall_s columns)."""
    try:
        schedulable = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        schedulable = os.cpu_count() or 1
    return {"cpu_count": os.cpu_count() or 1,
            "schedulable_cpus": schedulable}


def validate_document(doc: Dict) -> List[str]:
    """Schema + identity check for a ``bench_checkpoint/v1`` document.

    Beyond field presence, enforces the claims the artifact exists to
    make: within every backend the baseline, checkpointed and resumed
    digests are one value; that value is the same across backends;
    every resume actually started from a durable snapshot; and the
    snapshot payload is non-trivial.
    """
    problems: List[str] = []
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}")
    if not isinstance(doc.get("config"), dict):
        problems.append("config must be a dict")
    rows = doc.get("results")
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty list")
        return problems
    for i, row in enumerate(rows):
        for key, kinds in (("backend", str), ("digest", str),
                           ("ckpt_digest", str), ("resume_digest", str),
                           ("resumed_from", int), ("snapshot_nbytes", int),
                           ("write_ms", (int, float)),
                           ("read_ms", (int, float)),
                           ("wall_s", (int, float)),
                           ("ckpt_wall_s", (int, float))):
            if not isinstance(row.get(key), kinds):
                problems.append(f"results[{i}].{key} missing or wrong type")
    for row in rows:
        if not isinstance(row, dict):
            continue
        backend = row.get("backend", "?")
        if row.get("ckpt_digest") != row.get("digest"):
            problems.append(
                f"{backend}: checkpointing perturbed the run "
                "(ckpt_digest != digest)")
        if row.get("resume_digest") != row.get("digest"):
            problems.append(
                f"{backend}: resumed digest != uninterrupted digest "
                "(bit-identity broken)")
        if isinstance(row.get("resumed_from"), int) and \
                row["resumed_from"] < 0:
            problems.append(f"{backend}: resume never loaded a snapshot")
        if isinstance(row.get("snapshot_nbytes"), int) and \
                row["snapshot_nbytes"] <= 0:
            problems.append(f"{backend}: empty snapshot payload")
    digests = {r.get("digest") for r in rows if isinstance(r, dict)}
    if len(digests) > 1:
        problems.append(
            f"digest diverged across backends: {sorted(map(str, digests))}")
    return problems
