#!/usr/bin/env python
"""Fault tolerance: training SpLPG with lossy workers.

Synchronous data-parallel training in real clusters loses worker
contributions to crashes, preemptions and stragglers.  This example
injects failures — each worker's contribution to a synchronization
round is dropped with probability q — and shows how link-prediction
accuracy degrades (gracefully) as q grows, since each round simply
averages over the survivors.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import TrainConfig, run_framework, split_edges
from repro.graph import synthetic_lp_graph


def main() -> None:
    rng = np.random.default_rng(11)
    graph = synthetic_lp_graph(num_nodes=700, target_edges=3000,
                               feature_dim=48, num_communities=10,
                               intra_fraction=0.9, rng=rng)
    split = split_edges(graph, rng=rng)
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"4 workers, gradient averaging\n")

    print(f"{'failure prob':>12} {'Hits@50':>8} {'AUC':>7} "
          f"{'dropped batches':>16}")
    print("-" * 48)
    for q in (0.0, 0.1, 0.3, 0.5):
        config = TrainConfig(
            gnn_type="sage", hidden_dim=48, num_layers=2, fanouts=(10, 5),
            batch_size=128, epochs=15, hits_k=50, eval_every=3, seed=2,
            worker_failure_prob=q,
        )
        result = run_framework("splpg", split, num_parts=4, config=config,
                               rng=np.random.default_rng(7))
        print(f"{q:>12.1f} {result.test.hits:>8.3f} "
              f"{result.test.auc:>7.3f} "
              f"{result.dropped_contributions:>16d}")

    print("\nReading: synchronous SGD with partial participation degrades "
          "smoothly —\neach failed contribution wastes one worker-batch of "
          "compute but the\nsurvivors' average still makes progress.")


if __name__ == "__main__":
    main()
