#!/usr/bin/env python
"""Quickstart: train SpLPG on a synthetic Cora-like graph.

Walks the full pipeline of the paper's Algorithm 1:

1. load a dataset and split its edges 80/10/10,
2. partition + sparsify (METIS with mirrored cross-edges, then
   effective-resistance sparsification of each partition),
3. train GraphSAGE replicas on 4 simulated workers with global
   per-source negative sampling,
4. report test Hits@K / AUC and the communication ledger.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SpLPG, TrainConfig, load_dataset, split_edges


def main() -> None:
    rng = np.random.default_rng(0)

    print("Loading a Cora-like dataset (scaled for a quick demo)...")
    graph = load_dataset("cora", scale=0.3, feature_dim=64)
    print(f"  {graph}")

    split = split_edges(graph, rng=rng)
    print(f"  train/val/test positive edges: "
          f"{split.train_pos.shape[0]}/{split.val_pos.shape[0]}/"
          f"{split.test_pos.shape[0]}")

    config = TrainConfig(
        gnn_type="sage",
        hidden_dim=64,
        num_layers=2,
        fanouts=(10, 5),
        batch_size=128,
        epochs=15,
        hits_k=50,
        eval_every=3,
        seed=0,
    )
    framework = SpLPG(num_parts=4, alpha=0.15, config=config, seed=0)

    print("\nPreparing (partition + sparsify)...")
    prepared = framework.prepare(split.train_graph)
    kept = prepared.sparsified.total_edges()
    total = sum(p.num_edges for p in prepared.partitioned.parts)
    print(f"  sparsification kept {kept}/{total} partition edges "
          f"({kept / total:.1%}) in {prepared.sparsify_seconds:.3f}s")

    print("\nTraining on 4 simulated workers...")
    result = framework.fit(split)

    print(f"\nTest {result.test}")
    print(f"Best epoch: {result.best_epoch}")
    print(f"Graph data transferred: "
          f"{result.graph_data_gb_per_epoch * 1024:.3f} MB/epoch")

    print("\nScoring five held-out positive pairs and five negatives:")
    pos_scores = framework.score(split.test_pos[:5])
    neg_scores = framework.score(split.test_neg[:5])
    for (u, v), s in zip(split.test_pos[:5].tolist(), pos_scores):
        print(f"  edge ({u:4d},{v:4d})  score={s:+.3f}  (positive)")
    for (u, v), s in zip(split.test_neg[:5].tolist(), neg_scores):
        print(f"  pair ({u:4d},{v:4d})  score={s:+.3f}  (negative)")


if __name__ == "__main__":
    main()
