#!/usr/bin/env python
"""Quickstart: train SpLPG on a synthetic Cora-like graph.

Walks the full pipeline of the paper's Algorithm 1 through the
`repro.api` front door:

1. the `repro.run(...)` one-liner — load, split, partition, sparsify,
   train, evaluate in a single call,
2. the chainable `Session`, which keeps the simulated cluster alive so
   the trained model can also score held-out pairs,
3. the underlying `SpLPG` class for when you need the pieces
   (`prepare()` exposes the partition/sparsify intermediates).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    print("One-liner: repro.run trains any framework end to end...")
    result = repro.run(framework="splpg", dataset="cora", workers=4,
                       scale="quick", epochs=15, hits_k=50)
    print(result.summary())

    print("\nSession: same pipeline, chainable, cluster kept alive...")
    graph = repro.load_dataset("cora", scale=0.3, feature_dim=64)
    split = repro.split_edges(graph, rng=np.random.default_rng(0))
    print(f"  {graph}")
    print(f"  train/val/test positive edges: "
          f"{split.train_pos.shape[0]}/{split.val_pos.shape[0]}/"
          f"{split.test_pos.shape[0]}")

    session = (repro.Session(graph, split)
               .partition(4)
               .framework("splpg")
               .backend("serial")          # or "thread" / "process";
               .configure(gnn_type="sage",  # results are bit-identical
                          hidden_dim=64, num_layers=2, fanouts=(10, 5),
                          batch_size=128, epochs=15, hits_k=50,
                          eval_every=3, seed=0))
    result = session.train()
    print(f"  Test {result.test}")
    print(f"  Best epoch: {result.best_epoch}")
    print(f"  Graph data transferred: "
          f"{result.graph_data_gb_per_epoch * 1024:.3f} MB/epoch")

    print("\n  Scoring five held-out positives and five negatives:")
    pos = session.score(split.test_pos[:5])
    neg = session.score(split.test_neg[:5])
    for (u, v), s in zip(split.test_pos[:5].tolist(), pos.scores):
        print(f"    edge ({u:4d},{v:4d})  score={s:+.3f}  (positive)")
    for (u, v), s in zip(split.test_neg[:5].tolist(), neg.scores):
        print(f"    pair ({u:4d},{v:4d})  score={s:+.3f}  (negative)")

    print("\nLow level: the SpLPG class exposes the intermediates...")
    config = repro.TrainConfig(gnn_type="sage", hidden_dim=64,
                               num_layers=2, fanouts=(10, 5),
                               batch_size=128, epochs=15, hits_k=50,
                               eval_every=3, seed=0)
    framework = repro.SpLPG(num_parts=4, alpha=0.15, config=config, seed=0)
    prepared = framework.prepare(split.train_graph)
    kept = prepared.sparsified.total_edges()
    total = sum(p.num_edges for p in prepared.partitioned.parts)
    print(f"  sparsification kept {kept}/{total} partition edges "
          f"({kept / total:.1%}) in {prepared.sparsify_seconds:.3f}s")


if __name__ == "__main__":
    main()
