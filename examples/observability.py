#!/usr/bin/env python
"""Observe a distributed training run: trace, metrics, Chrome export.

Runs a 2-worker SpLPG job with ``TrainConfig(observe=True)``, then
uses the attached :class:`~repro.obs.RunReport` to:

* verify that the report's byte totals match the communication
  ledger exactly (the byte-exact mirroring contract);
* print the top-3 spans by modeled self-time — where the simulated
  clock went;
* export a Chrome-trace JSON that drops straight into
  https://ui.perfetto.dev (one row per worker).

Everything is deterministic: rerun the script and the trace is
bit-identical.  See docs/observability.md for the conventions.

Run:  python examples/observability.py
"""

import numpy as np

from repro import TrainConfig, run_framework, split_edges
from repro.graph import synthetic_lp_graph


def main() -> None:
    rng = np.random.default_rng(11)
    graph = synthetic_lp_graph(num_nodes=500, target_edges=2200,
                               feature_dim=32, num_communities=8,
                               rng=rng)
    split = split_edges(graph, rng=rng)
    config = TrainConfig(epochs=3, batch_size=128, observe=True, seed=11)

    print("Training SpLPG on 2 workers with observe=True ...")
    result = run_framework("splpg", split, num_parts=2, config=config,
                           rng=np.random.default_rng(11))
    report = result.report

    print("\n== run summary ==")
    print(report.summary())

    ledger = result.comm_total
    assert report.comm["feature_bytes"] == ledger.feature_bytes
    assert report.comm["structure_bytes"] == ledger.structure_bytes
    assert report.comm["sync_bytes"] == ledger.sync_bytes
    print("byte-exact: RunReport totals == CommRecord ledger")

    print("\n== top-3 spans by modeled self-time ==")
    for name, count, secs in report.top_spans(3):
        print(f"  {name:<12} x{count:<5} {secs:.6f} s")

    report.save("observability_run.json")
    report.export_chrome_trace("observability_run.trace.json")
    print("\nwrote observability_run.json (the full artifact)")
    print("wrote observability_run.trace.json — open it at "
          "https://ui.perfetto.dev")
    print("CLI equivalents:")
    print("  python -m repro.obs summarize observability_run.json")
    print("  python -m repro.obs export observability_run.json")


if __name__ == "__main__":
    main()
