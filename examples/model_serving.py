#!/usr/bin/env python
"""Train → checkpoint → serve: the full model lifecycle.

1. Train SpLPG on a co-authorship-style graph.
2. Checkpoint the synchronized model to disk (`.npz`).
3. Reload it into a fresh process-equivalent model.
4. Serve link predictions from the simulated cluster with
   :class:`~repro.distributed.DistributedScorer`, comparing the
   serving communication bill of a sparsified store vs full data
   sharing.

Run:  python examples/model_serving.py
"""

import os
import tempfile

import numpy as np

from repro import SpLPG, TrainConfig, load_dataset, split_edges
from repro.distributed import (
    DistributedScorer,
    RemoteGraphStore,
    SparsifiedRemoteStore,
)
from repro.nn import build_model, load_model, save_model


def main() -> None:
    rng = np.random.default_rng(21)
    graph = load_dataset("co-cs", scale=0.04, feature_dim=64)
    split = split_edges(graph, rng=rng)
    print(f"Graph: {graph.num_nodes} authors, {graph.num_edges} "
          f"collaborations")

    config = TrainConfig(gnn_type="sage", hidden_dim=48, num_layers=2,
                         fanouts=(10, 5), batch_size=128, epochs=12,
                         hits_k=50, eval_every=3, seed=4)
    framework = SpLPG(num_parts=4, alpha=0.15, config=config, seed=4)
    result = framework.fit(split)
    print(f"\nTrained: {result.test}")

    # ---- checkpoint and reload -------------------------------------
    trained = framework._trainer.workers[0].model
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "splpg_sage.npz")
        save_model(trained, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"Checkpoint written: {size_kb:.1f} KiB")

        served_model = build_model("sage", graph.feature_dim,
                                   config.hidden_dim,
                                   num_layers=config.num_layers, seed=999)
        load_model(served_model, path)
    print("Checkpoint reloaded into a fresh model.")

    # ---- distributed serving ----------------------------------------
    prepared = framework.prepared
    queries = np.concatenate([split.test_pos[:50], split.test_neg[:50]])

    sparsified_store = SparsifiedRemoteStore(
        split.train_graph, prepared.sparsified.graphs,
        prepared.partitioned.assignment)
    full_store = RemoteGraphStore(split.train_graph)

    print(f"\nServing {queries.shape[0]} queries from 4 workers:")
    print(f"{'store':<12} {'bytes fetched':>14} {'top-10 precision':>17}")
    for label, store in [("sparsified", sparsified_store),
                         ("full", full_store)]:
        scorer = DistributedScorer(served_model, prepared.partitioned,
                                   remote=store, fanouts=(-1, -1),
                                   rng=np.random.default_rng(3))
        res = scorer.score(queries)
        order = np.argsort(-res.scores)[:10]
        precision = np.mean(order < 50)  # first 50 queries are positives
        print(f"{label:<12} {res.comm.graph_data_bytes:>14,d} "
              f"{precision:>17.2f}")

    print("\nReading: the sparsified store answers serving-time remote "
          "expansions with\nfar fewer bytes while the ranking quality is "
          "essentially unchanged — the\nsame trade-off SpLPG exploits "
          "during training.")


if __name__ == "__main__":
    main()
