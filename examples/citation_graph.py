#!/usr/bin/env python
"""Citation recommendation with a sparsification-level sweep.

Knowledge-graph-style use case from the paper's introduction: predict
which papers should cite each other.  This example sweeps SpLPG's
sparsification level alpha on a Citeseer-like citation graph and shows
the paper's Table III trade-off — more aggressive sparsification saves
communication but eventually costs accuracy.

Run:  python examples/citation_graph.py
"""

import numpy as np

from repro import SpLPG, TrainConfig, load_dataset, run_framework, split_edges


def main() -> None:
    rng = np.random.default_rng(5)
    graph = load_dataset("citeseer", scale=0.3, feature_dim=64)
    print(f"Citation graph: {graph.num_nodes} papers, "
          f"{graph.num_edges} citation links")

    split = split_edges(graph, rng=rng)
    config = TrainConfig(
        gnn_type="gcn",
        hidden_dim=48,
        num_layers=2,
        fanouts=(10, 5),
        batch_size=128,
        epochs=12,
        hits_k=50,
        eval_every=3,
        seed=2,
    )

    # Reference point: SpLPG+ = complete data sharing, no sparsification.
    plus = run_framework("splpg_plus", split, num_parts=4, config=config,
                         rng=np.random.default_rng(9))
    plus_gb = plus.graph_data_gb_per_epoch
    print(f"\nSpLPG+ (no sparsification): Hits@50={plus.test.hits:.3f}, "
          f"comm={plus_gb * 1024:.2f} MB/epoch")

    print(f"\n{'alpha':>6} {'edges kept':>11} {'Hits@50':>8} "
          f"{'comm MB/ep':>11} {'saving':>7}")
    print("-" * 49)
    for alpha in (0.05, 0.10, 0.15, 0.25):
        framework = SpLPG(num_parts=4, alpha=alpha, config=config, seed=2)
        prepared = framework.prepare(split.train_graph)
        kept = prepared.sparsified.total_edges()
        total = sum(p.num_edges for p in prepared.partitioned.parts)
        result = framework.fit(split)
        gb = result.graph_data_gb_per_epoch
        saving = 1.0 - gb / plus_gb if plus_gb else 0.0
        print(f"{alpha:>6.2f} {kept / total:>10.1%} "
              f"{result.test.hits:>8.3f} {gb * 1024:>11.3f} "
              f"{saving:>7.1%}")

    print("\nReading: alpha around 0.15 keeps ~10-15% of shared-partition "
          "edges,\nsaving the bulk of the transfer while accuracy stays "
          "near the unsparsified\nceiling — the paper's recommended "
          "operating point.")


if __name__ == "__main__":
    main()
