#!/usr/bin/env python
"""How far does a GNN get you?  Heuristics vs embeddings vs GNNs.

The paper's Section II-A surveys the link-prediction toolbox: classical
similarity heuristics, random-walk embeddings (DeepWalk), and GNNs.
This example runs all three families on one graph:

* heuristics — common neighbors, Adamic-Adar, Katz (no training);
* DeepWalk — structure-only skip-gram embeddings;
* GraphSAGE — centralized, and distributed with SpLPG.

GNNs use node features; the others cannot, which is exactly the gap
they are supposed to close.

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro import TrainConfig, run_framework, split_edges
from repro.embeddings import deepwalk_embedding
from repro.eval import auc, heuristic_score, hits_at_k
from repro.graph import synthetic_lp_graph


def main() -> None:
    rng = np.random.default_rng(17)
    graph = synthetic_lp_graph(num_nodes=700, target_edges=3000,
                               feature_dim=48, num_communities=10,
                               intra_fraction=0.88, rng=rng)
    split = split_edges(graph, rng=rng)
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.feature_dim}-dim features\n")

    rows = []

    # --- classical heuristics (no training) --------------------------
    for name in ("common_neighbors", "adamic_adar", "katz"):
        pos = heuristic_score(name, split.train_graph, split.test_pos)
        neg = heuristic_score(name, split.train_graph, split.test_neg)
        rows.append((name, hits_at_k(pos, neg, 50), auc(pos, neg), "-"))

    # --- DeepWalk ------------------------------------------------------
    emb = deepwalk_embedding(split.train_graph, dim=48, num_walks=8,
                             walk_length=30, epochs=3,
                             rng=np.random.default_rng(1))
    pos = emb.score_pairs(split.test_pos)
    neg = emb.score_pairs(split.test_neg)
    rows.append(("deepwalk", hits_at_k(pos, neg, 50), auc(pos, neg), "-"))

    # --- GNNs -----------------------------------------------------------
    config = TrainConfig(gnn_type="sage", hidden_dim=48, num_layers=2,
                         fanouts=(10, 5), batch_size=128, epochs=30,
                         hits_k=50, eval_every=5, seed=2)
    for fw in ("centralized", "splpg"):
        parts = 1 if fw == "centralized" else 4
        res = run_framework(fw, split, num_parts=parts, config=config,
                            rng=np.random.default_rng(3))
        comm = (f"{res.graph_data_gb_per_epoch * 1024:.2f} MB/ep"
                if parts > 1 else "-")
        rows.append((f"sage/{fw}", res.test.hits, res.test.auc, comm))

    print(f"{'method':<22} {'Hits@50':>8} {'AUC':>7} {'comm':>12}")
    print("-" * 52)
    for name, hits, a, comm in rows:
        print(f"{name:<22} {hits:>8.3f} {a:>7.3f} {comm:>12}")

    print("\nReading: neighborhood heuristics are respectable on a graph "
          "with strong\ncommunity structure, DeepWalk learns that "
          "structure without features, and\nthe feature-aware GNN tops "
          "both when trained centrally.  SpLPG keeps the\ndistributed "
          "version in the race at a modest epoch budget — give it more "
          "\nepochs (the paper trains 500) and it closes on the "
          "centralized line.")


if __name__ == "__main__":
    main()
