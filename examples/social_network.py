#!/usr/bin/env python
"""Friend recommendation on a social network (framework comparison).

The paper's motivating domain: predict missing friendships.  This
example builds a community-structured social graph, then compares how
the distributed training regime affects recommendation quality:

* centralized training (the reference),
* PSGD-PA (vanilla METIS partitions, local negatives only),
* SpLPG (mirrored partitions + sparsified global negatives),

and prints accuracy alongside the per-epoch communication bill —
the trade-off the paper is about.

Run:  python examples/social_network.py
"""

import numpy as np

from repro import PAPER_LABELS, TrainConfig, run_framework, split_edges
from repro.graph import synthetic_lp_graph


def build_social_graph(rng: np.random.Generator):
    """A power-law friendship graph with tight communities."""
    return synthetic_lp_graph(
        num_nodes=900,
        target_edges=4200,
        feature_dim=48,       # user profile embeddings
        num_communities=12,   # friend circles
        intra_fraction=0.92,  # most friendships stay inside a circle
        exponent=2.3,         # a few highly connected users
        rng=rng,
    )


def main() -> None:
    rng = np.random.default_rng(7)
    graph = build_social_graph(rng)
    print(f"Social graph: {graph.num_nodes} users, "
          f"{graph.num_edges} friendships")

    split = split_edges(graph, rng=rng)
    config = TrainConfig(
        gnn_type="sage",
        hidden_dim=48,
        num_layers=2,
        fanouts=(10, 5),
        batch_size=128,
        epochs=12,
        hits_k=50,
        eval_every=3,
        seed=1,
    )

    print(f"\n{'framework':<14} {'Hits@50':>8} {'AUC':>7} "
          f"{'comm MB/epoch':>14}")
    print("-" * 47)
    for name in ("centralized", "psgd_pa", "splpg"):
        parts = 1 if name == "centralized" else 4
        result = run_framework(name, split, num_parts=parts, config=config,
                               rng=np.random.default_rng(3))
        comm_mb = result.graph_data_gb_per_epoch * 1024
        print(f"{PAPER_LABELS[name]:<14} {result.test.hits:>8.3f} "
              f"{result.test.auc:>7.3f} {comm_mb:>14.3f}")

    print("\nReading: PSGD-PA pays nothing in communication but loses "
          "accuracy to\nfragmented neighborhoods and local-only negatives; "
          "SpLPG recovers most of\nthe centralized accuracy at a fraction "
          "of full data-sharing cost.")


if __name__ == "__main__":
    main()
