#!/usr/bin/env python
"""Scaling study: partitions, models, and where the bytes go.

A systems-flavored example: sweep the worker count p for SpLPG on a
Pubmed-like graph, break the communication bill into feature vs
structure bytes, and show the partitioner quality numbers (edge cut,
balance, replication factor) that drive them.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import TrainConfig, load_dataset, run_framework, split_edges
from repro.partition import edge_cut, partition_balance, partition_graph
from repro.sparsify import sparsify_partitions


def main() -> None:
    rng = np.random.default_rng(3)
    graph = load_dataset("pubmed", scale=0.12, feature_dim=64)
    print(f"Graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{graph.feature_dim}-dim features")
    split = split_edges(graph, rng=rng)

    config = TrainConfig(
        gnn_type="sage",
        hidden_dim=48,
        num_layers=2,
        fanouts=(10, 5),
        batch_size=256,
        epochs=4,
        hits_k=50,
        eval_every=4,
        seed=4,
    )

    print("\n-- Partitioner quality (mini-METIS, mirrored storage) --")
    print(f"{'p':>3} {'edge cut':>9} {'cut %':>7} {'balance':>8} "
          f"{'replication':>12}")
    for p in (2, 4, 8):
        pg = partition_graph(split.train_graph, p, "metis",
                             rng=np.random.default_rng(p), mirror=True)
        cut = edge_cut(split.train_graph, pg.assignment)
        print(f"{p:>3} {cut:>9} {cut / split.train_graph.num_edges:>7.1%} "
              f"{partition_balance(pg.assignment, p):>8.3f} "
              f"{pg.replication_factor():>12.3f}")

    print("\n-- SpLPG communication breakdown per epoch --")
    print(f"{'p':>3} {'features MB':>12} {'structure MB':>13} "
          f"{'total MB':>9} {'Hits@50':>8}")
    for p in (2, 4, 8):
        result = run_framework("splpg", split, num_parts=p, config=config,
                               rng=np.random.default_rng(p))
        epochs = len(result.history)
        feat_mb = result.comm_total.feature_bytes / epochs / 2**20
        struct_mb = result.comm_total.structure_bytes / epochs / 2**20
        print(f"{p:>3} {feat_mb:>12.3f} {struct_mb:>13.3f} "
              f"{feat_mb + struct_mb:>9.3f} {result.test.hits:>8.3f}")

    print("\n-- Sparsifier throughput --")
    pg = partition_graph(split.train_graph, 4, "metis",
                         rng=np.random.default_rng(1), mirror=True)
    for alpha in (0.05, 0.15, 0.30):
        sparsified = sparsify_partitions(pg, alpha=alpha,
                                         rng=np.random.default_rng(1))
        total = sum(part.num_edges for part in pg.parts)
        print(f"  alpha={alpha:.2f}: kept "
              f"{sparsified.total_edges()}/{total} edges in "
              f"{sparsified.elapsed_seconds * 1e3:.1f} ms")

    print("\nReading: feature bytes dominate the bill (the paper's "
          "observation that\nnode features are the heavy payload), and "
          "both buckets grow with p as\nmore negative destinations land "
          "in remote partitions.")


if __name__ == "__main__":
    main()
